package dyngraph

import (
	"fmt"
	"math/rand"
	"testing"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

// benchBatches pre-generates valid upsert batches: sources drawn from a
// fixed pool of the first `pool` vertices (so the affected-vertex set is
// the same across graph sizes), destinations anywhere in [0, n).
func benchBatches(n, pool, batches, size int, seed int64) [][]Delta {
	r := rand.New(rand.NewSource(seed))
	out := make([][]Delta, batches)
	for b := range out {
		batch := make([]Delta, size)
		for i := range batch {
			batch[i] = Delta{
				Src:    graph.VertexID(r.Intn(pool)),
				Dst:    graph.VertexID(r.Intn(n)),
				Weight: float32(r.Float64()*9 + 1),
			}
		}
		out[b] = batch
	}
	return out
}

// BenchmarkIngest measures end-to-end Apply cost — delta validation,
// segment maintenance, envelope updates, incremental sampler rebuilds,
// overlay flattening, epoch publication — per ingested edge. The sweep
// over |V| with a fixed affected-vertex pool is the O(affected-vertex)
// demonstration: if any ingest step rebuilt full-graph state (sampler
// tables, content hash), ns/edge would scale with |V|; incrementally
// maintained, it stays flat.
func BenchmarkIngest(b *testing.B) {
	const (
		batchSize = 256
		pool      = 512
	)
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			base := gen.WithUniformWeights(gen.UniformDegree(n, 8, 131), 1, 5, 132)
			batches := benchBatches(n, pool, 64, batchSize, 133)
			d, err := New(base, Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Apply(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
				// Keep the overlay bounded so the benchmark measures steady
				// ingest, not unbounded overlay growth.
				if (i+1)%64 == 0 {
					b.StopTimer()
					if _, err := d.Compact(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchSize), "ns/edge")
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "edges/sec")
		})
	}
}

// BenchmarkSamplerUpdate isolates the sampler-maintenance share of
// ingest: identical Apply workload on an unweighted graph (no tables to
// maintain) would not represent weighted cost, so instead it reports
// the per-edge cost of Apply on a weighted graph where every batch
// touches few vertices with high degree — the worst case for the
// O(degree) table rebuild.
func BenchmarkSamplerUpdate(b *testing.B) {
	const n = 20_000
	base := gen.WithUniformWeights(gen.Hotspot(n, 8, 16, 2000, 137), 1, 5, 138)
	r := rand.New(rand.NewSource(139))
	batches := make([][]Delta, 64)
	for i := range batches {
		batch := make([]Delta, 64)
		for j := range batch {
			batch[j] = Delta{
				Src:    graph.VertexID(r.Intn(16)), // always a hub
				Dst:    graph.VertexID(r.Intn(n)),
				Weight: float32(r.Float64()*9 + 1),
			}
		}
		batches[i] = batch
	}
	d, err := New(base, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Apply(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
		if (i+1)%64 == 0 {
			b.StopTimer()
			if _, err := d.Compact(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*64), "ns/edge")
}

// BenchmarkCompact measures folding a 16k-delta overlay over a 100k-
// vertex graph into a fresh CSR (materialization + sampler-store fold +
// fingerprint).
func BenchmarkCompact(b *testing.B) {
	const n = 100_000
	base := gen.WithUniformWeights(gen.UniformDegree(n, 8, 141), 1, 5, 142)
	batches := benchBatches(n, n, 16, 1024, 143)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := New(base, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if _, err := d.Apply(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := d.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
