// Package barrierphase implements the kklint analyzer enforcing BSP phase
// discipline on engine state and passivity of observer/tracer hooks.
//
// Rule 1: phase-tagged fields. A struct field carrying a `//kk:phase
// <name>[,<name>...]` comment (trailing on the field line or alone on the
// line above) may only be written from functions running in one of those
// phases. A function's phase set comes from its own `//kk:phase <names>`
// doc annotation when present; otherwise it inherits the union of the
// phases of the annotated functions it is reachable from in the package
// call graph — an explicit annotation overrides inheritance, so a
// superstep driver annotated `barrier` does not leak its phase into the
// compute stages it calls. Writes from functions with no phase at all
// (unreachable from any annotated root) are findings too: phase-tagged
// state must only move inside the superstep structure. Composite-literal
// construction is not a write, so constructors building the whole struct
// stay out of scope; constructors assigning tagged fields directly belong
// in a `setup` phase listed on the field.
//
// Rule 2: hook passivity, generalized from the ad-hoc check that lived in
// atomiccounter. Implementations of any interface whose name ends in
// Observer or Tracer (core.Observer, core.Tracer,
// transport.ExchangePeerObserver, fixtures) may accumulate into their own
// receiver but must be passive toward the engine: no writes to state
// reachable from hook parameters — directly or by passing a parameter to
// an in-package function that writes through it (tracked with the shared
// interprocedural write-through summaries) — and no channel sends, direct
// or via an in-package callee. Hooks observe the engine; they never steer
// it and never block on another goroutine's readiness.
package barrierphase

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// PhaseMarker is the comment prefix tagging fields and functions with
// their BSP phase.
const PhaseMarker = "kk:phase"

// Analyzer is the phase-discipline and hook-passivity check.
var Analyzer = &analysis.Analyzer{
	Name: "barrierphase",
	Doc: "enforce BSP phase discipline on //kk:phase-tagged fields and passivity of Observer/Tracer hooks\n\n" +
		"Engine state tagged with a phase may only be mutated by functions reachable in that phase, " +
		"and hook implementations must not write engine state or send on channels.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := analysis.BuildCallGraph(pass)
	checkPhases(pass, g)
	checkHookPassivity(pass, g)
	return nil, nil
}

// --- rule 1: phase-tagged fields ---

func checkPhases(pass *analysis.Pass, g *analysis.CallGraph) {
	tagged := taggedFields(pass)
	if len(tagged) == 0 {
		return
	}

	// A function's phase set: its own annotation, or what it inherits from
	// annotated roots through the call graph (annotation stops
	// propagation).
	stop := func(n *analysis.FuncNode) bool {
		_, ok := n.Directive("phase")
		return ok
	}
	phasesOf := make(map[*types.Func]map[string]bool)
	addPhases := func(fn *types.Func, names []string) {
		set := phasesOf[fn]
		if set == nil {
			set = make(map[string]bool)
			phasesOf[fn] = set
		}
		for _, n := range names {
			set[n] = true
		}
	}
	for fn, node := range g.Nodes {
		d, ok := node.Directive("phase")
		if !ok {
			continue
		}
		names := splitPhases(d.Args)
		for reached := range g.Reachable([]*types.Func{fn}, stop) {
			addPhases(reached, names)
		}
	}

	for fn, node := range g.Nodes {
		if lintutil.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		report := func(lhs ast.Expr) {
			for _, fobj := range fieldChain(pass.TypesInfo, lhs) {
				phases, ok := tagged[fobj]
				if !ok {
					continue
				}
				fnPhases := phasesOf[fn]
				if intersects(fnPhases, phases) {
					continue
				}
				if len(fnPhases) == 0 {
					pass.Reportf(lhs.Pos(),
						"phase-tagged field %s (phase %s) written in %s, which is not reachable from any //kk:phase root",
						fobj.Name(), joinPhases(phases), fn.Name())
				} else {
					pass.Reportf(lhs.Pos(),
						"phase-tagged field %s (phase %s) written in %s, which runs in phase %s",
						fobj.Name(), joinPhases(phases), fn.Name(), joinPhases(fnPhases))
				}
			}
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if _, isIdent := lhs.(*ast.Ident); isIdent {
						continue
					}
					report(lhs)
				}
			case *ast.IncDecStmt:
				if _, isIdent := n.X.(*ast.Ident); !isIdent {
					report(n.X)
				}
			}
			return true
		})
	}
}

// taggedFields collects every struct field carrying a //kk:phase comment,
// mapped to its phase-name set.
func taggedFields(pass *analysis.Pass) map[types.Object]map[string]bool {
	out := make(map[types.Object]map[string]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				args, found := fieldPhaseTag(fld)
				if !found {
					continue
				}
				names := splitPhases(args)
				if len(names) == 0 {
					pass.Reportf(fld.Pos(), "//%s tag needs at least one phase name", PhaseMarker)
					continue
				}
				set := make(map[string]bool, len(names))
				for _, p := range names {
					set[p] = true
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = set
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldPhaseTag finds a //kk:phase directive in a field's own comments —
// its doc group (line above) or trailing group. The parser's comment
// attachment is used rather than line arithmetic so a tag trailing one
// field is never mistaken for a tag above the next.
func fieldPhaseTag(fld *ast.Field) (args string, found bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		for _, d := range analysis.ParseDirectives(cg) {
			if d.Name == "phase" {
				return d.Args, true
			}
		}
	}
	return "", false
}

// fieldChain returns the field objects traversed by an lvalue chain:
// fieldChain(`e.adapt.modes[i]`) = [modes, adapt]. Writing an element or
// member through a tagged field is a write to that field's phase domain.
func fieldChain(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if v, ok := lintutil.ObjOf(info, x.Sel).(*types.Var); ok && v.IsField() {
				out = append(out, v)
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return out
		}
	}
}

func splitPhases(args string) []string {
	var out []string
	for _, p := range strings.Split(args, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func joinPhases(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func intersects(a, b map[string]bool) bool {
	for n := range a {
		if b[n] {
			return true
		}
	}
	return false
}

// --- rule 2: hook passivity ---

// hookIface is one Observer/Tracer interface visible to the package.
type hookIface struct {
	iface *types.Interface
	kind  string // "observer" or "tracer", for diagnostics
}

func checkHookPassivity(pass *analysis.Pass, g *analysis.CallGraph) {
	ifaces := hookInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return
	}
	sums := analysis.Summarize(g)
	info := pass.TypesInfo

	for fn, node := range g.Nodes {
		fd := node.Decl
		if fd.Recv == nil || lintutil.IsTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		recv := fn.Type().(*types.Signature).Recv().Type()
		kind, isHook := hookOf(recv, fd.Name.Name, ifaces)
		if !isHook {
			continue
		}

		// The hook's non-receiver parameters: state the engine showed it.
		params := make(map[types.Object]bool)
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}

		reportf := func(pos token.Pos, format string, args ...interface{}) {
			pass.Reportf(pos, "%s hook %s must be passive: %s",
				kind, fd.Name.Name, fmt.Sprintf(format, args...))
		}

		// Direct writes through hook parameters and direct channel sends.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if _, isIdent := lhs.(*ast.Ident); isIdent {
						continue
					}
					if root := lintutil.Root(lhs); root != nil {
						obj := lintutil.ObjOf(info, root)
						if obj != nil && params[obj] && analysis.AliasesCaller(obj.Type()) {
							reportf(lhs.Pos(), "this writes state reachable from hook parameter %s", root.Name)
						}
					}
				}
			case *ast.IncDecStmt:
				if _, isIdent := n.X.(*ast.Ident); !isIdent {
					if root := lintutil.Root(n.X); root != nil {
						obj := lintutil.ObjOf(info, root)
						if obj != nil && params[obj] && analysis.AliasesCaller(obj.Type()) {
							reportf(n.X.Pos(), "this writes state reachable from hook parameter %s", root.Name)
						}
					}
				}
			case *ast.SendStmt:
				reportf(n.Arrow, "channel send inside a hook")
			}
			return true
		})

		// Interprocedural: passing a hook parameter to an in-package
		// function that writes through it, or calling an in-package sender.
		for _, cs := range node.Calls {
			callee := cs.Callee
			if callee == nil || g.NodeOf(callee) == nil {
				continue
			}
			if _, sends := sums.Sends(callee); sends {
				reportf(cs.Call.Pos(), "calls %s, which sends on a channel", callee.Name())
			}
			cw := sums.ParamWritesOf(callee)
			if len(cw) == 0 {
				continue
			}
			args := calleeArgs(info, cs.Call, callee)
			for i, arg := range args {
				if i >= len(cw) || !cw[i] || arg == nil {
					continue
				}
				root := lintutil.Root(arg)
				if root == nil {
					continue
				}
				if obj := lintutil.ObjOf(info, root); obj != nil && params[obj] {
					reportf(arg.Pos(), "call passes hook parameter %s to %s, which writes through it",
						root.Name, callee.Name())
				}
			}
		}
	}
}

// calleeArgs aligns a call's expressions with the callee's summary
// positions (receiver first for method calls).
func calleeArgs(info *types.Info, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var out []ast.Expr
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	out = append(out, call.Args...)
	return out
}

// hookInterfaces collects every interface named *Observer or *Tracer
// visible to the package: its own scope plus direct imports.
func hookInterfaces(pkg *types.Package) []hookIface {
	var out []hookIface
	scopes := []*types.Scope{pkg.Scope()}
	for _, imp := range pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			var kind string
			switch {
			case strings.HasSuffix(name, "Observer"):
				kind = "observer"
			case strings.HasSuffix(name, "Tracer"):
				kind = "tracer"
			default:
				continue
			}
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok || iface.NumMethods() == 0 {
				continue
			}
			out = append(out, hookIface{iface: iface, kind: kind})
		}
	}
	return out
}

// hookOf reports whether method name on receiver type recv is a hook of
// one of the interfaces, and of which kind.
func hookOf(recv types.Type, name string, ifaces []hookIface) (string, bool) {
	for _, h := range ifaces {
		implements := types.Implements(recv, h.iface)
		if !implements {
			if _, isPtr := recv.(*types.Pointer); !isPtr {
				implements = types.Implements(types.NewPointer(recv), h.iface)
			}
		}
		if !implements {
			continue
		}
		for i := 0; i < h.iface.NumMethods(); i++ {
			if h.iface.Method(i).Name() == name {
				return h.kind, true
			}
		}
	}
	return "", false
}
