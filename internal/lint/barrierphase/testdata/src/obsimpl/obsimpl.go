// Package obsimpl implements an Observer interface imported from another
// package (the obs-implements-core.Observer scenario).
package obsimpl

import "obsdemo"

type remote struct {
	total int64
}

var _ obsdemo.Observer = (*remote)(nil)

func (r *remote) OnSpan(s *obsdemo.Span) {
	r.total += s.Steps
	s.Notes = append(s.Notes, "tag") // want "observer hook OnSpan must be passive"
}

func (r *remote) OnCount(n int64) { r.total += n }

func (r *remote) OnTable(m map[string]int64) {}
