// Package hookdemo exercises the generalized hook-passivity rule: Tracer
// interfaces, channel sends (direct and via a callee), and interprocedural
// write-through via the dataflow summaries.
package hookdemo

// Span is what hooks are shown.
type Span struct{ Steps int64 }

// Tracer is a hook interface by the *Tracer naming convention.
type Tracer interface {
	OnEvent(s *Span)
}

// chatty steers the engine three ways: it hands its parameter to a writer,
// sends on a channel, and calls a sender.
type chatty struct{ ch chan int }

func (c *chatty) OnEvent(s *Span) {
	scrub(s)     // want "call passes hook parameter s to scrub, which writes through it"
	c.ch <- 1    // want "tracer hook OnEvent must be passive: channel send inside a hook"
	notify(c.ch) // want "calls notify, which sends on a channel"
}

// scrub writes through its parameter — indirectly, via reset, so the
// summary must propagate through two in-package hops.
func scrub(s *Span) { reset(s) }

func reset(s *Span) { s.Steps = 0 }

func notify(ch chan int) { ch <- 2 }

// quiet is well-behaved: it accumulates into its receiver and passes its
// receiver (not the hook parameter) to an in-package writer.
type quiet struct{ total int64 }

func (q *quiet) OnEvent(s *Span) {
	q.total += s.Steps
	record(q, s)
}

// record writes through q only; the s position stays clean in its summary.
func record(q *quiet, s *Span) { q.total += s.Steps }
