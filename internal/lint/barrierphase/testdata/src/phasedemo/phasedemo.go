// Package phasedemo exercises the phase-discipline rule: //kk:phase field
// tags, function annotations, inheritance through the call graph, and the
// annotation-overrides-inheritance cut.
package phasedemo

type engine struct {
	walkers  []int //kk:phase compute
	samplers []int //kk:phase barrier,setup
	plain    int
}

// newEngine builds the whole struct; composite-literal construction is
// not a phase-domain write.
func newEngine() *engine {
	return &engine{walkers: []int{1}, samplers: []int{2}}
}

// run drives one superstep in the barrier phase. Its own annotation does
// not leak into compute, which carries its own.
//
//kk:phase barrier
func run(e *engine) {
	e.samplers[0] = 1 // barrier is on the field's phase list: fine
	e.walkers = nil   // want "field walkers .phase compute. written in run, which runs in phase barrier"
	compute(e)
}

// compute is the compute-phase root.
//
//kk:phase compute
func compute(e *engine) {
	e.walkers = append(e.walkers, 1)
	helper(e)
}

// helper has no annotation of its own: it inherits compute from its
// caller, and only compute — run's barrier phase stops at compute.
func helper(e *engine) {
	e.walkers[0] = 2
	e.samplers[0] = 3 // want "field samplers .phase barrier,setup. written in helper, which runs in phase compute"
	e.plain = 4
	e.plain++
}

// loose is unreachable from any annotated root; phase-tagged state must
// not move outside the superstep structure.
func loose(e *engine) {
	e.walkers = nil // want "written in loose, which is not reachable from any //kk:phase root"
}

type sloppy struct {
	//kk:phase
	x int // want "//kk:phase tag needs at least one phase name"
}
