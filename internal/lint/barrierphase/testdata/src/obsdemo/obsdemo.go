// Package obsdemo exercises the observer-passivity rule with a local
// Observer interface.
package obsdemo

// Span is what hooks are shown.
type Span struct {
	Steps int64
	Notes []string
}

// Observer is the hook interface; implementations must be passive.
type Observer interface {
	OnSpan(s *Span)
	OnCount(n int64)
	OnTable(m map[string]int64)
}

// accumulator is a well-behaved observer: it writes only its own state.
type accumulator struct {
	steps int64
	last  map[string]int64
}

func (a *accumulator) OnSpan(s *Span) { a.steps += s.Steps }

func (a *accumulator) OnCount(n int64) {
	n++ // rebinding the value copy is harmless
	a.steps += n
}

func (a *accumulator) OnTable(m map[string]int64) {
	if a.last == nil {
		a.last = make(map[string]int64)
	}
	for k, v := range m {
		a.last[k] = v
	}
}

// meddler mutates the state it was shown: every hook write-through fires.
type meddler struct{}

func (md *meddler) OnSpan(s *Span) {
	s.Steps = 0 // want "observer hook OnSpan must be passive"
}

func (md *meddler) OnCount(n int64) {}

func (md *meddler) OnTable(m map[string]int64) {
	m["stolen"] = 1 // want "observer hook OnTable must be passive"
}

// offDuty has an OnSpan-shaped method but does not implement Observer
// (missing OnTable), so it is not held to the contract.
type offDuty struct{}

func (o *offDuty) OnSpan(s *Span) { s.Steps = 0 }

func (o *offDuty) OnCount(n int64) {}
