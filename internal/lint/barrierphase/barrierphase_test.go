package barrierphase_test

import (
	"testing"

	"knightking/internal/lint/analysistest"
	"knightking/internal/lint/barrierphase"
)

func TestPhaseDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", barrierphase.Analyzer, "phasedemo")
}

func TestObserverPassivity(t *testing.T) {
	analysistest.Run(t, "testdata", barrierphase.Analyzer, "obsdemo", "obsimpl")
}

func TestTracerPassivity(t *testing.T) {
	analysistest.Run(t, "testdata", barrierphase.Analyzer, "hookdemo")
}
