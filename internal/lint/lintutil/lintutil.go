// Package lintutil holds the small AST and comment helpers shared by the
// kklint analyzers: waiver-comment lookup, expression roots, and test-file
// detection.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WaiverMarker is the comment prefix that waives a kklint determinism
// finding at one statement: `//kk:nondet-ok <reason>`. The reason is
// mandatory — an empty waiver is itself a diagnostic — and the analyzer
// records every accepted waiver so drivers can list them.
const WaiverMarker = "kk:nondet-ok"

// AllocWaiverMarker waives a hotalloc finding: `//kk:alloc-ok <reason>`.
// The reason should explain why the allocation is off the steady-state
// walker/message path (amortized growth, error path, gated telemetry).
const AllocWaiverMarker = "kk:alloc-ok"

// GoroWaiverMarker waives a goroleak finding: `//kk:goro-ok <reason>`.
// The reason should name the out-of-band join (e.g. http.Server.Shutdown).
const GoroWaiverMarker = "kk:goro-ok"

// AllWaiverMarkers is every marker the stale-waiver audit scans for: a
// marker comment that no longer suppresses any firing diagnostic is dead
// and must be removed.
var AllWaiverMarkers = []string{WaiverMarker, AllocWaiverMarker, GoroWaiverMarker}

// Waiver is one accepted waiver comment. Pos is the position of the
// marker comment itself (not the waived statement), so the stale-waiver
// audit can match accepted waivers against the marker comments present in
// the source.
type Waiver struct {
	Pos    token.Pos
	Marker string
	Reason string
}

// FindWaiver looks for a marker comment attached to the statement at pos:
// either trailing on the same source line or alone on the line directly
// above. It returns the waiver text (may be empty — the caller should then
// report a missing reason), the comment's position, and whether a marker
// was found at all.
func FindWaiver(fset *token.FileSet, file *ast.File, pos token.Pos, marker string) (reason string, cpos token.Pos, found bool) {
	line := fset.Position(pos).Line
	// A same-line marker always wins over one on the line above: when
	// consecutive lines each carry their own trailing waiver, the one
	// trailing line N-1 must not absorb line N's finding (which would
	// leave line N's own waiver looking stale).
	var aboveReason string
	var abovePos token.Pos
	var aboveFound bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, marker) {
				continue
			}
			cline := fset.Position(c.Pos()).Line
			switch cline {
			case line:
				return strings.TrimSpace(strings.TrimPrefix(text, marker)), c.Pos(), true
			case line - 1:
				if !aboveFound {
					aboveReason = strings.TrimSpace(strings.TrimPrefix(text, marker))
					abovePos = c.Pos()
					aboveFound = true
				}
			}
		}
	}
	return aboveReason, abovePos, aboveFound
}

// MarkerComments returns the position of every waiver-marker comment in
// file, for the stale-waiver audit. Directive comments (kk:hotpath,
// kk:phase) are not markers and are not returned.
func MarkerComments(file *ast.File) []Waiver {
	var out []Waiver
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			for _, m := range AllWaiverMarkers {
				if strings.HasPrefix(text, m) {
					out = append(out, Waiver{
						Pos:    c.Pos(),
						Marker: m,
						Reason: strings.TrimSpace(strings.TrimPrefix(text, m)),
					})
					break
				}
			}
		}
	}
	return out
}

// Waive is the shared report-or-record helper: it reports the finding at
// pos unless a reasoned waiver comment with the given marker is attached,
// in which case the waiver is appended to *waivers instead. A marker with
// an empty reason is itself a diagnostic.
func Waive(pass interface {
	Reportf(pos token.Pos, format string, args ...interface{})
}, fset *token.FileSet, file *ast.File, waivers *[]Waiver, marker string, pos token.Pos, msg string) {
	reason, cpos, found := FindWaiver(fset, file, pos, marker)
	switch {
	case !found:
		pass.Reportf(pos, "%s", msg)
	case reason == "":
		pass.Reportf(pos, "//%s waiver needs a reason", marker)
	default:
		*waivers = append(*waivers, Waiver{Pos: cpos, Marker: marker, Reason: reason})
	}
}

// FileOf returns the *ast.File among files containing pos, or nil.
func FileOf(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// IsTestFile reports whether pos lies in a _test.go file. The kklint
// analyzers enforce runtime contracts; test code asserts those contracts
// rather than being bound by them (e.g. tests count walk endpoints in maps
// and compare order-independently).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Root unwraps selectors, indexes, slices, stars, parens, and type
// assertions down to the base identifier of an lvalue/rvalue chain:
// Root(`a.b[i].c`) = `a`. Returns nil when the chain does not bottom out
// in an identifier (e.g. a call result or composite literal).
func Root(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsPkgCall reports whether call invokes the package-level function
// pkgpath.name (e.g. "time".Now). It resolves through the type-checker, so
// dot-imports and renamed imports are handled correctly.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgpath string, names ...string) bool {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj, ok := info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgpath {
		return false
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// ObjOf returns the object an identifier resolves to (use or def).
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
