// Package lintutil holds the small AST and comment helpers shared by the
// kklint analyzers: waiver-comment lookup, expression roots, and test-file
// detection.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WaiverMarker is the comment prefix that waives a kklint determinism
// finding at one statement: `//kk:nondet-ok <reason>`. The reason is
// mandatory — an empty waiver is itself a diagnostic — and the analyzer
// records every accepted waiver so drivers can list them.
const WaiverMarker = "kk:nondet-ok"

// Waiver is one accepted waiver comment.
type Waiver struct {
	Pos    token.Pos
	Reason string
}

// FindWaiver looks for a marker comment attached to the statement at pos:
// either trailing on the same source line or alone on the line directly
// above. It returns the waiver text (may be empty — the caller should then
// report a missing reason) and whether a marker was found at all.
func FindWaiver(fset *token.FileSet, file *ast.File, pos token.Pos, marker string) (reason string, found bool) {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, marker) {
				continue
			}
			cline := fset.Position(c.Pos()).Line
			if cline != line && cline != line-1 {
				continue
			}
			return strings.TrimSpace(strings.TrimPrefix(text, marker)), true
		}
	}
	return "", false
}

// FileOf returns the *ast.File among files containing pos, or nil.
func FileOf(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// IsTestFile reports whether pos lies in a _test.go file. The kklint
// analyzers enforce runtime contracts; test code asserts those contracts
// rather than being bound by them (e.g. tests count walk endpoints in maps
// and compare order-independently).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Root unwraps selectors, indexes, slices, stars, parens, and type
// assertions down to the base identifier of an lvalue/rvalue chain:
// Root(`a.b[i].c`) = `a`. Returns nil when the chain does not bottom out
// in an identifier (e.g. a call result or composite literal).
func Root(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// IsPkgCall reports whether call invokes the package-level function
// pkgpath.name (e.g. "time".Now). It resolves through the type-checker, so
// dot-imports and renamed imports are handled correctly.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgpath string, names ...string) bool {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	obj, ok := info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgpath {
		return false
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// ObjOf returns the object an identifier resolves to (use or def).
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
