// Package driver loads type-checked packages and runs the kklint
// analyzers over them, in two modes:
//
//   - Standalone: `kklint ./...` — shells out to `go list -export -deps`
//     for package metadata and export data, type-checks each target
//     package against the gc export files, and prints diagnostics. This
//     is the developer loop and what `make lint` wraps via go vet.
//   - Unitchecker (unitchecker.go): invoked by `go vet -vettool=kklint`
//     once per package with a vet.cfg JSON file.
//
// Both modes use only the standard library: the repo has no external
// dependencies, so the usual x/tools loaders are reimplemented here on
// top of go/importer.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// Diag is one analyzer finding with a resolved source position.
type Diag struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Waiver is one accepted //kk:nondet-ok comment, with position resolved.
type Waiver struct {
	Pos    token.Position
	Reason string
}

// analyze applies every analyzer to one type-checked package.
func analyze(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info) ([]Diag, []Waiver, error) {
	var diags []Diag
	var waivers []Waiver
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diag{
					Pos:      fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			},
		}
		value, err := a.Run(pass)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path(), err)
		}
		if ws, ok := value.([]lintutil.Waiver); ok {
			for _, w := range ws {
				waivers = append(waivers, Waiver{Pos: fset.Position(w.Pos), Reason: w.Reason})
			}
		}
	}
	return diags, waivers, nil
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Standalone runs the analyzers over the packages matched by patterns.
// Diagnostics and (optionally) recorded waivers go to out; loader errors
// to errw. Returns the process exit code: 0 clean, 1 findings, 2 errors.
func Standalone(analyzers []*analysis.Analyzer, patterns []string, showWaivers bool, out, errw io.Writer) int {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = errw
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintf(errw, "kklint: %v\n", err)
		return 2
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintf(errw, "kklint: go list: %v\n", err)
		return 2
	}
	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(errw, "kklint: decoding go list output: %v\n", err)
			return 2
		}
		if p.Error != nil {
			fmt.Fprintf(errw, "kklint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 2
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if err := cmd.Wait(); err != nil {
		fmt.Fprintf(errw, "kklint: go list: %v\n", err)
		return 2
	}

	fset := token.NewFileSet()
	imp := exportImporter{importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})}

	var allDiags []Diag
	var allWaivers []Waiver
	code := 0
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(errw, "kklint: %v\n", err)
				return 2
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			fmt.Fprintf(errw, "kklint: typechecking %s: %v\n", p.ImportPath, err)
			return 2
		}
		diags, waivers, err := analyze(analyzers, fset, files, pkg, info)
		if err != nil {
			fmt.Fprintf(errw, "kklint: %v\n", err)
			return 2
		}
		allDiags = append(allDiags, diags...)
		allWaivers = append(allWaivers, waivers...)
	}

	sort.Slice(allDiags, func(i, j int) bool { return posLess(allDiags[i].Pos, allDiags[j].Pos) })
	sort.Slice(allWaivers, func(i, j int) bool { return posLess(allWaivers[i].Pos, allWaivers[j].Pos) })
	for _, d := range allDiags {
		fmt.Fprintf(out, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		code = 1
	}
	if showWaivers {
		for _, w := range allWaivers {
			fmt.Fprintf(out, "%s: waived: %s\n", w.Pos, w.Reason)
		}
	}
	return code
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// exportImporter resolves "unsafe" specially and defers everything else
// to the gc export-data importer.
type exportImporter struct {
	under types.Importer
}

func (e exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.under.Import(path)
}

// stripVariant normalizes a test-variant import path like
// "knightking/internal/core [knightking/internal/core.test]" to the plain
// package path, so detrand's deterministic-set lookup matches when go vet
// analyzes test variants.
func stripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
