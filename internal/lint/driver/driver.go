// Package driver loads type-checked packages and runs the kklint
// analyzers over them, in two modes:
//
//   - Standalone: `kklint ./...` — shells out to `go list -export -deps`
//     for package metadata and export data, type-checks each target
//     package against the gc export files, and prints diagnostics. This
//     is the developer loop and what `make lint` wraps via go vet.
//   - Unitchecker (unitchecker.go): invoked by `go vet -vettool=kklint`
//     once per package with a vet.cfg JSON file.
//
// Both modes use only the standard library: the repo has no external
// dependencies, so the usual x/tools loaders are reimplemented here on
// top of go/importer.
//
// Cross-package facts: interprocedural analyzers (hotalloc) export a
// per-package JSON blob and read the blobs of the packages they import.
// Standalone exploits `go list -deps` dependency ordering to propagate
// the blobs in-memory — module dependencies outside the requested
// patterns are analyzed facts-only (diagnostics suppressed) so callers
// always see their callees' contracts. Unitchecker carries the blobs in
// the vetx files cmd/go threads between compilation units.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// Diag is one analyzer finding with a resolved source position.
type Diag struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Waiver is one accepted waiver comment, with position resolved.
type Waiver struct {
	Pos    token.Position
	Marker string
	Reason string
}

// Options selects Standalone's optional behaviors.
type Options struct {
	// Waivers prints every accepted waiver after the diagnostics and
	// fails the run when a waiver marker in the analyzed files no longer
	// suppresses any diagnostic (a stale waiver).
	Waivers bool
	// Tests analyzes test variants: `go list -test` replaces each package
	// that has tests with its "pkg [pkg.test]" variant (regular + test
	// files) and adds the external "pkg_test" package.
	Tests bool
}

// facts is the cross-package blob store: analyzer name → canonical
// package path → blob.
type facts map[string]map[string][]byte

// factsOnly filters analyzers down to the ones that export cross-package
// facts. Dependency-only units (standalone deps outside the requested
// patterns, vet's VetxOnly units — including the standard library) run
// only these: downstream packages still see their callees' contracts,
// and non-fact analyzers never run over code that was never a lint
// target.
func factsOnly(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if a.Facts {
			out = append(out, a)
		}
	}
	return out
}

// analyze applies every analyzer to one type-checked package, threading
// the facts store through each pass.
func analyze(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, fs facts) ([]Diag, []Waiver, error) {
	var diags []Diag
	var waivers []Waiver
	for _, a := range analyzers {
		blobs := fs[a.Name]
		if blobs == nil {
			blobs = make(map[string][]byte)
			fs[a.Name] = blobs
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diag{
					Pos:      fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			},
			ImportFacts: func(path string) []byte { return blobs[path] },
			ExportFacts: func(blob []byte) {
				if blob != nil {
					blobs[pkg.Path()] = blob
				}
			},
		}
		value, err := a.Run(pass)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path(), err)
		}
		if ws, ok := value.([]lintutil.Waiver); ok {
			for _, w := range ws {
				waivers = append(waivers, Waiver{
					Pos:    fset.Position(w.Pos),
					Marker: w.Marker,
					Reason: w.Reason,
				})
			}
		}
	}
	return diags, waivers, nil
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Standalone runs the analyzers over the packages matched by patterns.
// Diagnostics and (optionally) recorded waivers go to out; loader errors
// to errw. Returns the process exit code: 0 clean, 1 findings (or stale
// waivers), 2 errors — including patterns that match no packages.
func Standalone(analyzers []*analysis.Analyzer, patterns []string, opts Options, out, errw io.Writer) int {
	args := []string{"list", "-export", "-deps"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args,
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,ForTest,ImportMap,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = errw
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintf(errw, "kklint: %v\n", err)
		return 2
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintf(errw, "kklint: go list: %v\n", err)
		return 2
	}
	exports := make(map[string]string)
	var pkgs []listPkg
	dec := json.NewDecoder(stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(errw, "kklint: decoding go list output: %v\n", err)
			return 2
		}
		if p.Error != nil {
			fmt.Fprintf(errw, "kklint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 2
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		fmt.Fprintf(errw, "kklint: go list: %v\n", err)
		return 2
	}

	// A package shadowed by its internal test variant ("X [X.test]")
	// contributes facts only; the variant carries the diagnostics for the
	// same files plus the test files.
	shadowed := make(map[string]bool)
	for _, p := range pkgs {
		if p.ForTest != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
			shadowed[p.ForTest] = true
		}
	}
	isTarget := func(p listPkg) bool {
		return !p.Standard && !p.DepOnly &&
			!strings.HasSuffix(p.ImportPath, ".test") && // generated test main
			!shadowed[p.ImportPath]
	}
	nTargets := 0
	for _, p := range pkgs {
		if isTarget(p) {
			nTargets++
		}
	}
	if nTargets == 0 {
		fmt.Fprintf(errw, "kklint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	fset := token.NewFileSet()
	// One importer per analyzed package: each package's ImportMap decides
	// which export file an import path resolves to (test variants remap
	// their own package), so importer caches must not leak across units.
	newImporter := func(importMap map[string]string) types.Importer {
		return exportImporter{importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			if canonical, ok := importMap[path]; ok {
				path = canonical
			}
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})}
	}

	fs := make(facts)
	var allDiags []Diag
	var allWaivers []Waiver
	var targetFiles []*ast.File
	code := 0
	// pkgs is in dependency order (go list -deps), so a package's facts
	// are always exported before its dependents are analyzed.
	for _, p := range pkgs {
		if p.Standard || strings.HasSuffix(p.ImportPath, ".test") || len(p.GoFiles) == 0 {
			continue
		}
		toRun := analyzers
		if !isTarget(p) {
			if toRun = factsOnly(analyzers); len(toRun) == 0 {
				continue
			}
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(errw, "kklint: %v\n", err)
				return 2
			}
			files = append(files, f)
		}
		info := analysis.NewInfo()
		conf := types.Config{Importer: newImporter(p.ImportMap), Sizes: types.SizesFor("gc", runtime.GOARCH)}
		pkg, err := conf.Check(stripVariant(p.ImportPath), fset, files, info)
		if err != nil {
			fmt.Fprintf(errw, "kklint: typechecking %s: %v\n", p.ImportPath, err)
			return 2
		}
		diags, waivers, err := analyze(toRun, fset, files, pkg, info, fs)
		if err != nil {
			fmt.Fprintf(errw, "kklint: %v\n", err)
			return 2
		}
		if isTarget(p) {
			allDiags = append(allDiags, diags...)
			allWaivers = append(allWaivers, waivers...)
			targetFiles = append(targetFiles, files...)
		}
	}

	sort.Slice(allDiags, func(i, j int) bool { return posLess(allDiags[i].Pos, allDiags[j].Pos) })
	for _, d := range allDiags {
		fmt.Fprintf(out, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		code = 1
	}
	if opts.Waivers {
		if staleCode := auditWaivers(fset, targetFiles, allWaivers, out); staleCode != 0 && code == 0 {
			code = staleCode
		}
	}
	return code
}

// auditWaivers prints the accepted waivers (deduplicated — two findings
// can share one comment) and flags every waiver-marker comment in the
// analyzed files that no analyzer accepted: a stale waiver suppresses
// nothing and must be removed. Returns 1 when stale waivers exist.
func auditWaivers(fset *token.FileSet, files []*ast.File, accepted []Waiver, out io.Writer) int {
	acceptedAt := make(map[string]bool)
	var uniq []Waiver
	for _, w := range accepted {
		key := posKey(w.Pos)
		if !acceptedAt[key] {
			acceptedAt[key] = true
			uniq = append(uniq, w)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return posLess(uniq[i].Pos, uniq[j].Pos) })
	for _, w := range uniq {
		fmt.Fprintf(out, "%s: waived: [%s] %s\n", w.Pos, w.Marker, w.Reason)
	}

	var stale []Waiver
	for _, f := range files {
		for _, m := range lintutil.MarkerComments(f) {
			pos := fset.Position(m.Pos)
			if !acceptedAt[posKey(pos)] {
				stale = append(stale, Waiver{Pos: pos, Marker: m.Marker, Reason: m.Reason})
			}
		}
	}
	sort.Slice(stale, func(i, j int) bool { return posLess(stale[i].Pos, stale[j].Pos) })
	for _, s := range stale {
		fmt.Fprintf(out, "%s: stale waiver: //%s no longer suppresses any diagnostic; remove it\n",
			s.Pos, s.Marker)
	}
	if len(stale) > 0 {
		return 1
	}
	return 0
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// exportImporter resolves "unsafe" specially and defers everything else
// to the gc export-data importer.
type exportImporter struct {
	under types.Importer
}

func (e exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.under.Import(path)
}

// stripVariant normalizes a test-variant import path like
// "knightking/internal/core [knightking/internal/core.test]" to the plain
// package path, so detrand's deterministic-set lookup matches when go vet
// analyzes test variants.
func stripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
