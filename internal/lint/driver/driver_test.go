package driver

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/goroleak"
	"knightking/internal/lint/hotalloc"
)

// TestStripVariant pins the normalization of `go list -test` and vet.cfg
// import-path spellings to the canonical package path analyzers compare
// against.
func TestStripVariant(t *testing.T) {
	cases := []struct{ in, want string }{
		{"knightking/internal/core", "knightking/internal/core"},
		{"knightking/internal/core [knightking/internal/core.test]", "knightking/internal/core"},
		{"knightking/internal/core_test [knightking/internal/core.test]", "knightking/internal/core_test"},
		{"knightking/internal/core.test", "knightking/internal/core.test"},
		{"", ""},
	}
	for _, c := range cases {
		if got := stripVariant(c.in); got != c.want {
			t.Errorf("stripVariant(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestStandaloneNoMatch pins the empty-pattern exit contract at the
// driver level: `go list` succeeds but matches nothing (testdata
// directories are excluded from wildcards), and Standalone must refuse
// with exit 2 rather than report a vacuously clean run.
func TestStandaloneNoMatch(t *testing.T) {
	var out, errw bytes.Buffer
	code := Standalone(nil, []string{"./testdata/..."}, Options{}, &out, &errw)
	if code != 2 {
		t.Fatalf("zero-match pattern exited %d, want 2\nstdout: %s\nstderr: %s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "no packages match") {
		t.Errorf("stderr %q does not explain the empty match", errw.String())
	}
}

// unitCfg writes a minimal vet.cfg for one dependency-free compilation
// unit and returns the config path and the vetx output path.
func unitCfg(t *testing.T, importPath, pkgFile string, src string, vetxOnly bool, packageVetx map[string]string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, pkgFile)
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := vetConfig{
		ID:          importPath,
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  importPath,
		GoFiles:     []string{goFile},
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		PackageVetx: packageVetx,
		VetxOnly:    vetxOnly,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgFile, vetx
}

// TestUnitcheckerVariantNormalization proves the test-variant spelling
// cmd/go uses for internal test packages — "X [X.test]" — reaches
// scope-gated analyzers as the plain path X: goroleak is scoped to
// knightking/internal/core and must still fire on the variant unit.
func TestUnitcheckerVariantNormalization(t *testing.T) {
	const src = `package core

func leak() {
	ch := make(chan int)
	go func() { ch <- 1 }()
}
`
	variant := "knightking/internal/core [knightking/internal/core.test]"
	cfgFile, _ := unitCfg(t, variant, "leak.go", src, false, nil)
	var out bytes.Buffer
	code := Unitchecker([]*analysis.Analyzer{goroleak.Analyzer}, cfgFile, &out)
	if code != 2 {
		t.Fatalf("variant unit exited %d, want 2 (findings)\noutput: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "no provable join") {
		t.Errorf("output %q lacks the goroleak finding", out.String())
	}
}

// TestUnitcheckerVetxRoundTrip pins the facts transport: a VetxOnly unit
// (how cmd/go vets dependencies) runs only the fact-exporting analyzers,
// writes its hot set to VetxOutput, and a later unit listing that file
// under the variant spelling sees the facts under the canonical path.
func TestUnitcheckerVetxRoundTrip(t *testing.T) {
	const src = `package demo

//kk:hotpath
func Step() int { return 1 }
`
	cfgFile, vetx := unitCfg(t, "example.com/demo", "demo.go", src, true, nil)
	var out bytes.Buffer
	code := Unitchecker([]*analysis.Analyzer{hotalloc.Analyzer, goroleak.Analyzer}, cfgFile, &out)
	if code != 0 {
		t.Fatalf("VetxOnly unit exited %d\noutput: %s", code, out.String())
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("vetx file not written: %v", err)
	}
	var blobs map[string][]byte
	if err := json.Unmarshal(data, &blobs); err != nil {
		t.Fatalf("vetx file is not a facts map: %v", err)
	}
	blob, ok := blobs["hotalloc"]
	if !ok {
		t.Fatalf("vetx %s lacks hotalloc facts: %q", vetx, data)
	}
	if !strings.Contains(string(blob), "Step") {
		t.Errorf("hotalloc facts %q do not list the hot function", blob)
	}

	// Downstream load under the test-variant spelling: the blob must be
	// keyed by the canonical path, which is what ImportFacts looks up.
	cfg := vetConfig{PackageVetx: map[string]string{
		"example.com/demo [example.com/demo.test]": vetx,
	}}
	fs := loadVetx(cfg, []*analysis.Analyzer{hotalloc.Analyzer})
	if got := fs["hotalloc"]["example.com/demo"]; !strings.Contains(string(got), "Step") {
		t.Errorf("loadVetx stored facts under the wrong key: %v", fs["hotalloc"])
	}
}
