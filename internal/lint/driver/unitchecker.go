// go vet -vettool protocol: cmd/go invokes the tool once per package with
// a single argument, the path to a JSON "vet.cfg" describing the
// compilation unit, and expects diagnostics on stderr (exit 2) plus a
// facts file written to VetxOutput. This mirrors
// golang.org/x/tools/go/analysis/unitchecker without the dependency.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"knightking/internal/lint/analysis"
)

// vetConfig is the JSON schema cmd/go writes (see cmd/go/internal/work).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker analyzes the single compilation unit described by cfgFile
// and returns the exit code: 0 clean, 1 internal error, 2 findings.
func Unitchecker(analyzers []*analysis.Analyzer, cfgFile string, out io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(out, "kklint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(out, "kklint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// cmd/go requires the facts file to exist even when empty, and for
	// VetxOnly units (dependencies vetted only for facts) nothing else.
	// kklint's analyzers are fact-free, so the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(out, "kklint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(out, "kklint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := exportImporter{importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", goarch())}
	if cfg.GoVersion != "" && strings.HasPrefix(cfg.GoVersion, "go") {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(stripVariant(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(out, "kklint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, _, err := analyze(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(out, "kklint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(out, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	return 2
}

// goarch is the target architecture for layout decisions; cmd/go does not
// pass it in the config, so honor GOARCH like the toolchain would.
func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
