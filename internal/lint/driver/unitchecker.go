// go vet -vettool protocol: cmd/go invokes the tool once per package with
// a single argument, the path to a JSON "vet.cfg" describing the
// compilation unit, and expects diagnostics on stderr (exit 2) plus a
// facts file written to VetxOutput. This mirrors
// golang.org/x/tools/go/analysis/unitchecker without the dependency.
//
// The vetx file carries the analyzers' cross-package facts between
// compilation units: a JSON object mapping analyzer name to its blob for
// this package. Dependency facts arrive through PackageVetx; VetxOnly
// units (dependencies vetted only for facts) run the analyzers with
// diagnostics suppressed so their facts still flow downstream.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"knightking/internal/lint/analysis"
)

// vetConfig is the JSON schema cmd/go writes (see cmd/go/internal/work).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker analyzes the single compilation unit described by cfgFile
// and returns the exit code: 0 clean, 1 internal error, 2 findings.
func Unitchecker(analyzers []*analysis.Analyzer, cfgFile string, out io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(out, "kklint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(out, "kklint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Dependency-only units (the standard library, module deps) exist
	// solely so their facts flow downstream; run only the fact-exporting
	// analyzers over them.
	if cfg.VetxOnly {
		analyzers = factsOnly(analyzers)
	}

	// cmd/go requires the facts file to exist even when the unit fails to
	// analyze; start empty and overwrite with real facts after the run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("{}"), 0o666); err != nil {
			fmt.Fprintf(out, "kklint: %v\n", err)
			return 1
		}
	}
	if len(analyzers) == 0 {
		return 0 // VetxOnly unit, no fact exporters: the empty vetx suffices
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(out, "kklint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := exportImporter{importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", goarch())}
	if cfg.GoVersion != "" && strings.HasPrefix(cfg.GoVersion, "go") {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := conf.Check(stripVariant(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(out, "kklint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Seed the facts store with the dependencies' vetx blobs so the
	// per-pass ImportFacts lookups (keyed by canonical package path) hit.
	fs := loadVetx(cfg, analyzers)
	diags, _, err := analyze(analyzers, fset, files, pkg, info, fs)
	if err != nil {
		fmt.Fprintf(out, "kklint: %v\n", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := writeVetx(cfg.VetxOutput, pkg.Path(), fs); err != nil {
			fmt.Fprintf(out, "kklint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(out, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	return 2
}

// loadVetx reads every dependency's vetx file into a facts store. Vetx
// files are keyed by the unit's import-path spelling (test variants
// included); blobs are stored under the canonical package path, which is
// what analyzers look up via types.Package.Path.
func loadVetx(cfg vetConfig, analyzers []*analysis.Analyzer) facts {
	fs := make(facts)
	for _, a := range analyzers {
		fs[a.Name] = make(map[string][]byte)
	}
	for unitPath, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue // absent facts mean an exempt dependency, not an error
		}
		var blobs map[string][]byte
		if json.Unmarshal(data, &blobs) != nil {
			continue
		}
		canonical := stripVariant(unitPath)
		for name, blob := range blobs {
			if fs[name] == nil {
				continue // facts from an analyzer this run does not carry
			}
			fs[name][canonical] = blob
		}
	}
	return fs
}

// writeVetx persists this unit's own facts (one blob per exporting
// analyzer) for downstream units.
func writeVetx(path, pkgPath string, fs facts) error {
	blobs := make(map[string][]byte)
	for name, byPkg := range fs {
		if blob, ok := byPkg[pkgPath]; ok {
			blobs[name] = blob
		}
	}
	data, err := json.Marshal(blobs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// goarch is the target architecture for layout decisions; cmd/go does not
// pass it in the config, so honor GOARCH like the toolchain would.
func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
