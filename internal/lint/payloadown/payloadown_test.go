package payloadown

import (
	"testing"

	"knightking/internal/lint/analysistest"
)

func TestPayloadown(t *testing.T) {
	// fakewire declares the Message type, so it is the owner package and
	// must come up clean despite retaining payloads; payuse is a consumer
	// and every retention without a copy must fire.
	analysistest.Run(t, "testdata", Analyzer, "fakewire", "payuse")
}
