// Package payloadown implements the kklint analyzer enforcing the
// transport Endpoint ownership contract: payloads of messages returned by
// Exchange (or decoded by ReadFrame) are owned by the caller only until
// the next Exchange or Close — the endpoint recycles the frame buffers the
// payloads alias. Retaining a payload past the call without an explicit
// copy is a use-after-recycle waiting for a load spike.
//
// The analysis is a per-function taint walk. Any value whose type is (or
// contains) a transport Message — a named struct, declared in another
// package, with a `Payload []byte` field — is tainted when it enters the
// function, whether as a call result or a parameter. Taint follows
// fields, indexing, slicing, append (when the element type can alias),
// and composite literals. A diagnostic fires when tainted data escapes
// the function's frame:
//
//   - assignment to a package-level variable,
//   - assignment through a parameter or receiver (struct fields,
//     pointees),
//   - a channel send.
//
// Explicit copies launder taint: string(p), append([]byte(nil), p...),
// bytes.Clone/slices.Clone, and the engine's checkpoint-barrier idiom
//
//	for i := range msgs {
//	    msgs[i].Payload = append([]byte(nil), msgs[i].Payload...)
//	}
//
// which untaints the whole slice. So does clear(msgs): zeroing the
// elements severs every payload alias the slice carried, after which
// retaining the backing array (e.g. stashing msgs[:0] as reusable
// scratch) is safe. A message's Local field is also clean — it holds an
// object whose ownership transfers to the receiver at delivery (see
// transport.LocalSender), not a view of a recycled frame buffer. The
// package that declares the Message type itself (the transport
// implementation) is exempt — it owns the buffers it recycles.
//
// Known limitations, tolerated for a lint: calls other than the
// recognized copy helpers are assumed not to retain their arguments, and
// bare []byte parameters are not presumed to be payloads.
package payloadown

import (
	"go/ast"
	"go/token"
	"go/types"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// Analyzer is the payload-ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "payloadown",
	Doc: "flag retention of Exchange/ReadFrame payload slices past the call\n\n" +
		"Transport message payloads alias pooled frame buffers that the endpoint recycles " +
		"on the next Exchange; storing them in long-lived state without copying is a data race in waiting.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &checker{
				pass:   pass,
				taint:  make(map[types.Object]bool),
				params: make(map[types.Object]bool),
			}
			c.seed(fn)
			c.stmtList(fn.Body.List)
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// taint marks local variables currently holding payload-aliasing data.
	taint map[types.Object]bool
	// params holds the function's parameters and receiver: writes through
	// them escape the frame.
	params map[types.Object]bool
}

// seed registers parameters/receiver and taints message-typed parameters:
// a caller handing us messages hands us aliased payloads.
func (c *checker) seed(fn *ast.FuncDecl) {
	fields := []*ast.FieldList{fn.Recv, fn.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				c.params[obj] = true
				if c.messageLike(obj.Type()) {
					c.taint[obj] = true
				}
			}
		}
	}
}

// messageLike reports whether t is (or wraps, via pointer/slice) a named
// struct with a `Payload []byte` field declared in ANOTHER package. The
// declaring package owns the buffers and is exempt.
func (c *checker) messageLike(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return c.messageLike(u.Elem())
	case *types.Slice:
		return c.messageLike(u.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Pkg() == nil || named.Obj().Pkg() == c.pass.Pkg {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Payload" {
			continue
		}
		if sl, ok := f.Type().(*types.Slice); ok {
			if b, ok := sl.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// --- statement walk (source order approximates flow order) ---

func (c *checker) stmtList(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.ExprStmt:
		// clear(msgs) zeroes the elements, severing every payload alias
		// the slice carried: the variable is clean afterwards.
		if call, ok := s.X.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "clear" {
					if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if obj := lintutil.ObjOf(c.pass.TypesInfo, arg); obj != nil {
							c.taint[obj] = false
						}
					}
				}
			}
		}
	case *ast.SendStmt:
		if c.tainted(s.Value) {
			c.pass.Reportf(s.Arrow,
				"payload sent to a channel without an explicit copy; the endpoint recycles the buffer on the next Exchange/ReadFrame")
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.store(name, c.tainted(vs.Values[i]), name.Pos())
					}
				}
			}
		}
	case *ast.BlockStmt:
		c.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmtList(s.Body.List)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmtList(s.Body.List)
	case *ast.RangeStmt:
		c.rangeStmt(s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmtList(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		// `case *T:` binds the assigned ident per clause; the bound value
		// aliases the switched expression, so it inherits its taint.
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				if obj := c.pass.TypesInfo.Implicits[cc]; obj != nil {
					if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
						c.taint[obj] = c.tainted(as.Rhs[0])
					}
				}
				c.stmtList(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.stmt(cc.Comm)
				}
				c.stmtList(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmtList(lit.Body.List)
		}
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmtList(lit.Body.List)
		}
	}
}

// assign applies taint to the left-hand sides. A tuple-call RHS taints by
// static result type (this is how Exchange/ReadFrame results and any
// wrapper returning []Message become sources).
func (c *checker) assign(s *ast.AssignStmt) {
	var taints []bool
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// msgs, err := e.Exchange(...) — per-result typing.
		if tup, ok := c.pass.TypesInfo.Types[s.Rhs[0]].Type.(*types.Tuple); ok {
			for i := 0; i < tup.Len(); i++ {
				taints = append(taints, c.messageLike(tup.At(i).Type()))
			}
		}
	}
	if taints == nil {
		for _, rhs := range s.Rhs {
			taints = append(taints, c.tainted(rhs))
		}
	}
	for i, lhs := range s.Lhs {
		t := false
		if i < len(taints) {
			t = taints[i]
		}
		c.store(lhs, t, s.TokPos)
	}
}

// store records (or reports) the effect of writing a value with the given
// taint into lhs.
func (c *checker) store(lhs ast.Expr, tainted bool, pos token.Pos) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := lintutil.ObjOf(c.pass.TypesInfo, id)
		if obj == nil {
			return
		}
		if c.isPkgLevel(obj) {
			if tainted {
				c.pass.Reportf(pos,
					"payload retained in package-level state without an explicit copy; the endpoint recycles the buffer on the next Exchange/ReadFrame")
			}
			return
		}
		c.taint[obj] = tainted
		return
	}
	if !tainted {
		return
	}
	root := lintutil.Root(lhs)
	var obj types.Object
	if root != nil {
		obj = lintutil.ObjOf(c.pass.TypesInfo, root)
	}
	switch {
	case obj == nil || c.isPkgLevel(obj):
		c.pass.Reportf(pos,
			"payload retained in package-level state without an explicit copy; the endpoint recycles the buffer on the next Exchange/ReadFrame")
	case c.taint[obj]:
		// Writing into storage that already aliases payloads (e.g.
		// msgs[i].Payload = ...) creates no new retention.
	case c.params[obj]:
		c.pass.Reportf(pos,
			"payload retained past the call via %s without an explicit copy; the endpoint recycles the buffer on the next Exchange/ReadFrame",
			root.Name)
	default:
		// Flowed into a local struct/slice: track it, report only if that
		// local later escapes.
		c.taint[obj] = true
	}
}

func (c *checker) isPkgLevel(obj types.Object) bool {
	return obj.Parent() == c.pass.Pkg.Scope()
}

// rangeStmt walks a range loop, propagating taint to the value variable
// and recognizing the checkpoint-barrier deep-copy idiom that untaints
// the ranged slice.
func (c *checker) rangeStmt(rs *ast.RangeStmt) {
	xTainted := c.tainted(rs.X)
	if xTainted {
		if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
			if obj := lintutil.ObjOf(c.pass.TypesInfo, v); obj != nil {
				c.taint[obj] = true
			}
		}
	}
	copied := false
	if xTainted {
		copied = c.isPayloadCopyLoop(rs)
	}
	c.stmtList(rs.Body.List)
	if copied {
		if x, ok := rs.X.(*ast.Ident); ok {
			if obj := lintutil.ObjOf(c.pass.TypesInfo, x); obj != nil {
				c.taint[obj] = false
			}
		}
	}
}

// isPayloadCopyLoop matches
//
//	for i := range X { X[i].Payload = <clean copy> }
//
// — the sanctioned way to sever a message slice from the endpoint's
// buffers before retaining it.
func (c *checker) isPayloadCopyLoop(rs *ast.RangeStmt) bool {
	x, ok := rs.X.(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			continue
		}
		sel, ok := as.Lhs[0].(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Payload" {
			continue
		}
		idx, ok := sel.X.(*ast.IndexExpr)
		if !ok {
			continue
		}
		base, ok := idx.X.(*ast.Ident)
		if !ok {
			continue
		}
		iid, ok := idx.Index.(*ast.Ident)
		if !ok {
			continue
		}
		info := c.pass.TypesInfo
		if lintutil.ObjOf(info, base) == lintutil.ObjOf(info, x) &&
			lintutil.ObjOf(info, iid) == lintutil.ObjOf(info, key) &&
			!c.tainted(as.Rhs[0]) {
			return true
		}
	}
	return false
}

// --- expression taint ---

func (c *checker) tainted(e ast.Expr) bool {
	// A value whose type cannot alias memory (int, string, bool, ...)
	// carries no taint no matter where it came from: m.From is safe even
	// when m is not.
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		if !typeAliases(tv.Type, nil) {
			return false
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := lintutil.ObjOf(c.pass.TypesInfo, e)
		return obj != nil && c.taint[obj]
	case *ast.SelectorExpr:
		// Message.Local is an ownership-transferred object (delivery hands
		// it to the receiver for keeps — transport.LocalSender), not a view
		// of a recycled frame buffer.
		if e.Sel.Name == "Local" {
			if tv, ok := c.pass.TypesInfo.Types[e.X]; ok && c.messageLike(tv.Type) {
				return false
			}
		}
		return c.tainted(e.X)
	case *ast.IndexExpr:
		return c.tainted(e.X)
	case *ast.SliceExpr:
		return c.tainted(e.X)
	case *ast.ParenExpr:
		return c.tainted(e.X)
	case *ast.StarExpr:
		return c.tainted(e.X)
	case *ast.TypeAssertExpr:
		return c.tainted(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.tainted(e.X)
		}
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if c.tainted(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return c.callTainted(e)
	default:
		return false
	}
}

// callTainted classifies calls: conversions keep slice taint, append
// propagates when the element type can alias, the copy helpers launder,
// and anything returning a message type is a source.
func (c *checker) callTainted(e *ast.CallExpr) bool {
	info := c.pass.TypesInfo
	// Conversion: []byte(p) aliases; string(p) copies.
	if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
		if _, ok := tv.Type.Underlying().(*types.Slice); ok {
			return c.tainted(e.Args[0])
		}
		return false
	}
	// Builtin append.
	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() != "append" || len(e.Args) == 0 {
				return false
			}
			if c.tainted(e.Args[0]) {
				return true
			}
			// append([]byte(nil), p...) copies bytes: clean. Appending
			// messages (elements that alias) keeps the taint.
			rt := info.Types[e].Type
			sl, ok := rt.Underlying().(*types.Slice)
			if !ok || !typeAliases(sl.Elem(), nil) {
				return false
			}
			for _, a := range e.Args[1:] {
				if c.tainted(a) {
					return true
				}
			}
			return false
		}
	}
	// Explicit copy helpers.
	if lintutil.IsPkgCall(info, e, "bytes", "Clone") ||
		lintutil.IsPkgCall(info, e, "slices", "Clone") {
		return false
	}
	// A single-result call returning a message type is a source (wrappers
	// around Exchange included); everything else is presumed not to retain.
	if t := info.Types[e].Type; t != nil {
		if _, isTuple := t.(*types.Tuple); !isTuple {
			return c.messageLike(t)
		}
	}
	return false
}

// typeAliases reports whether values of type t can alias other memory
// (contain a slice, pointer, map, chan, func, or interface). Strings are
// immutable and conversion-copied, so they do not count.
func typeAliases(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Array:
		return typeAliases(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeAliases(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
