// Package payuse consumes fakewire messages; every way of retaining a
// payload past the call, and every sanctioned copy idiom, appears here.
package payuse

import "fakewire"

var global []fakewire.Message

var globalBuf []byte

type cache struct {
	msgs []fakewire.Message
	buf  []byte
	objs []any
}

func leakToGlobal(e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	global = msgs // want "payload retained in package-level state"
}

func leakToField(c *cache, e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	c.msgs = msgs // want "payload retained past the call via c"
}

func leakPayloadToField(c *cache, e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	c.buf = msgs[0].Payload // want "payload retained past the call via c"
}

func leakReadFrame(c *cache, buf []byte) {
	msgs, _, _ := fakewire.ReadFrame(buf)
	c.msgs = msgs // want "payload retained past the call via c"
}

func leakToChannel(ch chan fakewire.Message, e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	ch <- msgs[0] // want "payload sent to a channel"
}

func leakParam(msgs []fakewire.Message) {
	// Parameters of message type carry aliased payloads too.
	global = msgs // want "payload retained in package-level state"
}

func leakViaDemux(e *fakewire.Endpoint) {
	var queries []fakewire.Message
	msgs, _ := e.Exchange(nil)
	for _, m := range msgs {
		queries = append(queries, m)
	}
	global = queries // want "payload retained in package-level state"
}

func leakPayloadSlice(e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	globalBuf = msgs[0].Payload[:2] // want "payload retained in package-level state"
}

// --- sanctioned idioms: no diagnostics below this line ---

func copyBytesOK(c *cache, e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	p := append([]byte(nil), msgs[0].Payload...)
	c.buf = p
}

func copyBarrierOK(c *cache, e *fakewire.Endpoint) {
	// The checkpoint-barrier idiom: deep-copy every payload, then the
	// slice is severed from the endpoint's buffers and may be retained.
	msgs, _ := e.Exchange(nil)
	for i := range msgs {
		msgs[i].Payload = append([]byte(nil), msgs[i].Payload...)
	}
	c.msgs = msgs
}

func stringOK(e *fakewire.Endpoint) string {
	msgs, _ := e.Exchange(nil)
	return string(msgs[0].Payload) // string conversion copies
}

func writeIntoTaintedOK(e *fakewire.Endpoint, p []byte) {
	// Overwriting a payload slot in the endpoint-owned slice creates no
	// new retention.
	msgs, _ := e.Exchange(nil)
	msgs[0].Payload = p
}

func localUseOK(e *fakewire.Endpoint) int {
	msgs, _ := e.Exchange(nil)
	total := 0
	for _, m := range msgs {
		total += len(m.Payload)
	}
	return total
}

func localObjectOK(c *cache, e *fakewire.Endpoint) {
	// Message.Local transfers ownership to the receiver at delivery; it is
	// not a view of a recycled frame buffer.
	msgs, _ := e.Exchange(nil)
	for _, m := range msgs {
		if m.Local != nil {
			c.objs = append(c.objs, m.Local)
		}
	}
}

func clearThenStashOK(c *cache, e *fakewire.Endpoint) {
	// clear zeroes the elements, severing the payload aliases; keeping the
	// backing array as reusable scratch is then safe.
	msgs, _ := e.Exchange(nil)
	clear(msgs)
	c.msgs = msgs[:0]
}

func stashWithoutClearBad(c *cache, e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	c.msgs = msgs[:0] // want "payload retained past the call via c"
}

func reassignCleanOK(c *cache, e *fakewire.Endpoint) {
	msgs, _ := e.Exchange(nil)
	_ = msgs
	var fresh []fakewire.Message
	for _, m := range msgs {
		fresh = append(fresh, fakewire.Message{
			From:    m.From,
			Kind:    m.Kind,
			Payload: append([]byte(nil), m.Payload...),
		})
	}
	c.msgs = fresh
}
