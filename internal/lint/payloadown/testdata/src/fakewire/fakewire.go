// Package fakewire is a stand-in for internal/transport in payloadown
// fixtures: a Message with a pooled Payload and an Endpoint that recycles
// buffers. As the package declaring Message, it OWNS the memory — the
// analyzer must not flag its own recycling.
package fakewire

// Message mirrors transport.Message, including the ownership-transferred
// Local object of the shared-address-space delivery path.
type Message struct {
	From    int
	Kind    byte
	Payload []byte
	Local   any
}

// Endpoint mirrors the pooled-buffer transport endpoint.
type Endpoint struct {
	bufs  [][]byte
	inbox []Message
}

// Exchange returns messages whose payloads alias pooled buffers, valid
// only until the next Exchange.
func (e *Endpoint) Exchange(out []Message) ([]Message, error) {
	// Owner-package recycling: retaining payloads here is the whole
	// point, and the analyzer stays silent.
	for _, m := range e.inbox {
		e.bufs = append(e.bufs, m.Payload)
	}
	msgs := e.inbox
	e.inbox = nil
	return msgs, nil
}

// ReadFrame decodes one frame; payloads alias buf.
func ReadFrame(buf []byte) ([]Message, []byte, error) {
	return []Message{{Payload: buf}}, buf, nil
}
