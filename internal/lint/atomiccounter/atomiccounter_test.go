package atomiccounter

import (
	"testing"

	"knightking/internal/lint/analysistest"
)

func TestAtomicCounter(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "atomdemo")
}
