// Package atomdemo exercises the atomic-word rules: mixed atomic/plain
// access, 32-bit alignment of 64-bit fields, and the atomic.Int64 escape
// hatch.
package atomdemo

import "sync/atomic"

// bad puts a 32-bit word first, pushing the 64-bit counter to offset 4
// under GOARCH=386 layout.
type bad struct {
	flag uint32
	hits int64 // want "64-bit atomic field hits is at offset 4 under 32-bit layout"
}

func (b *bad) inc() { atomic.AddInt64(&b.hits, 1) }

func (b *bad) read() int64 {
	return b.hits // want "access to hits without sync/atomic"
}

// good keeps the 64-bit counter first: aligned, and every access atomic.
type good struct {
	hits int64
	flag uint32
}

func (g *good) inc() { atomic.AddInt64(&g.hits, 1) }

func (g *good) load() int64 { return atomic.LoadInt64(&g.hits) }

func (g *good) reset() {
	g.hits = 0 // want "access to hits without sync/atomic"
}

// total is a package-level atomic word; plain reads still race.
var total int64

func bump() { atomic.AddInt64(&total, 1) }

func sloppyRead() int64 {
	return total // want "access to total without sync/atomic"
}

func sloppyWrite() {
	total++ // want "access to total without sync/atomic"
}

// modern uses the typed atomics: impossible to misuse, never flagged.
type modern struct {
	flag uint32
	hits atomic.Int64
}

func (m *modern) inc() { m.hits.Add(1) }

func (m *modern) read() int64 { return m.hits.Load() }

// plain is never touched atomically, so ordinary access is fine.
type plain struct {
	n int64
}

func (p *plain) inc() { p.n++ }
