// Package atomiccounter implements the kklint analyzer guarding the
// stats-counter contracts:
//
//  1. Mixed atomicity. A plain integer word whose address is ever passed
//     to a sync/atomic function is an "atomic word"; every other access
//     to it (reads, writes, ++) must also go through sync/atomic, or the
//     snapshot path tears on 32-bit platforms and races everywhere.
//     Fields of type atomic.Int64/atomic.Uint32/... are exempt — their
//     API makes non-atomic access impossible.
//  2. Alignment. A 64-bit atomic word that is a struct field must sit at
//     an 8-byte-aligned offset under 32-bit (GOARCH=386) layout rules,
//     per the sync/atomic bug note; the analyzer computes offsets with
//     types.SizesFor("gc", "386") so the mistake is caught on amd64
//     developer machines.
//
// The observer-passivity rule that used to live here moved to the
// barrierphase analyzer, which generalizes it to Tracer interfaces,
// channel sends, and interprocedural write-through.
package atomiccounter

import (
	"go/ast"
	"go/token"
	"go/types"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// Analyzer is the counter check.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc: "enforce sync/atomic discipline on counter words\n\n" +
		"Counter words touched by sync/atomic anywhere must be touched by it everywhere, and " +
		"64-bit fields must stay 8-byte aligned under 32-bit layout.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	checkAtomicWords(pass)
	return nil, nil
}

// --- rule 1 + 2: atomic words ---

func checkAtomicWords(pass *analysis.Pass) {
	info := pass.TypesInfo

	// Pass 1: every `&x` handed to a sync/atomic package function marks
	// x's object as an atomic word; those operand nodes are the allowed
	// accesses.
	words := make(map[types.Object]bool)
	allowed := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedObj(info, un.X); obj != nil {
					words[obj] = true
					allowed[un.X] = true
				}
			}
			return true
		})
	}
	if len(words) == 0 {
		return
	}

	// Pass 2a: 64-bit atomic fields must be 8-byte aligned under 386
	// layout. Package-level vars and allocation starts are guaranteed
	// aligned by the runtime; only interior struct fields can drift.
	sizes386 := types.SizesFor("gc", "386")
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := info.Types[st]
			if !ok {
				return true
			}
			styp, ok := tv.Type.(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, styp.NumFields())
			atomicWord := false
			for i := range fields {
				fields[i] = styp.Field(i)
				if words[fields[i]] {
					atomicWord = true
				}
			}
			// Only structs holding an atomic word need layout math; skipping
			// the rest also keeps Offsetsof away from generic types (type
			// parameters have no concrete size and make gcSizes panic).
			if !atomicWord {
				return true
			}
			offsets := sizes386.Offsetsof(fields)
			for i, f := range fields {
				if !words[f] || sizes386.Sizeof(f.Type()) != 8 {
					continue
				}
				if offsets[i]%8 != 0 {
					pass.Reportf(fieldPos(st, i, f),
						"64-bit atomic field %s is at offset %d under 32-bit layout; move 64-bit counters to the front of the struct or pad to 8-byte alignment",
						f.Name(), offsets[i])
				}
			}
			return true
		})
	}

	// Pass 2b: any other access to an atomic word is a tear/race.
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND && allowed[n.X] {
					return false
				}
			case *ast.SelectorExpr:
				if obj := info.Uses[n.Sel]; obj != nil && words[obj] {
					pass.Reportf(n.Pos(),
						"access to %s without sync/atomic; it is updated atomically elsewhere, so plain reads and writes race and can tear",
						obj.Name())
				}
				ast.Inspect(n.X, visit)
				return false
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && words[obj] {
					pass.Reportf(n.Pos(),
						"access to %s without sync/atomic; it is updated atomically elsewhere, so plain reads and writes race and can tear",
						obj.Name())
				}
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}

// isAtomicPkgCall reports whether call invokes a package-level function of
// sync/atomic (Add*, Load*, Store*, Swap*, CompareAndSwap*). Methods on
// atomic.Int64 etc. have receivers and are not matched — those types are
// safe by construction.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// addressedObj resolves &x's operand to a trackable object: a struct
// field (via selector) or a variable. Index expressions (&s[i]) have no
// stable object and are not tracked; heap slices are 8-aligned anyway.
func addressedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.Ident:
		return lintutil.ObjOf(info, e)
	}
	return nil
}

// fieldPos returns the declaration position of the i-th flattened field
// of st (fields with shared type specs and embedded fields included),
// falling back to the field object's own position.
func fieldPos(st *ast.StructType, i int, f *types.Var) token.Pos {
	idx := 0
	for _, fld := range st.Fields.List {
		if len(fld.Names) == 0 {
			if idx == i {
				return fld.Type.Pos()
			}
			idx++
			continue
		}
		for _, name := range fld.Names {
			if idx == i {
				return name.Pos()
			}
			idx++
		}
	}
	return f.Pos()
}

