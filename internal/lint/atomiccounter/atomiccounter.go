// Package atomiccounter implements the kklint analyzer guarding the
// stats-counter and observer contracts:
//
//  1. Mixed atomicity. A plain integer word whose address is ever passed
//     to a sync/atomic function is an "atomic word"; every other access
//     to it (reads, writes, ++) must also go through sync/atomic, or the
//     snapshot path tears on 32-bit platforms and races everywhere.
//     Fields of type atomic.Int64/atomic.Uint32/... are exempt — their
//     API makes non-atomic access impossible.
//  2. Alignment. A 64-bit atomic word that is a struct field must sit at
//     an 8-byte-aligned offset under 32-bit (GOARCH=386) layout rules,
//     per the sync/atomic bug note; the analyzer computes offsets with
//     types.SizesFor("gc", "386") so the mistake is caught on amd64
//     developer machines.
//  3. Observer passivity. Implementations of any interface named
//     `*Observer` (core.Observer, transport.Observer, fixtures) may
//     accumulate into their own receiver, but must not write to state
//     reachable from hook parameters — hooks observe the engine, they
//     never steer it.
package atomiccounter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// Analyzer is the counter/observer check.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccounter",
	Doc: "enforce sync/atomic discipline on counter words and passivity of Observer hooks\n\n" +
		"Counter words touched by sync/atomic anywhere must be touched by it everywhere, " +
		"64-bit fields must stay 8-byte aligned under 32-bit layout, and Observer hook " +
		"implementations must not write through their parameters.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	checkAtomicWords(pass)
	checkObserverPassivity(pass)
	return nil, nil
}

// --- rule 1 + 2: atomic words ---

func checkAtomicWords(pass *analysis.Pass) {
	info := pass.TypesInfo

	// Pass 1: every `&x` handed to a sync/atomic package function marks
	// x's object as an atomic word; those operand nodes are the allowed
	// accesses.
	words := make(map[types.Object]bool)
	allowed := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedObj(info, un.X); obj != nil {
					words[obj] = true
					allowed[un.X] = true
				}
			}
			return true
		})
	}
	if len(words) == 0 {
		return
	}

	// Pass 2a: 64-bit atomic fields must be 8-byte aligned under 386
	// layout. Package-level vars and allocation starts are guaranteed
	// aligned by the runtime; only interior struct fields can drift.
	sizes386 := types.SizesFor("gc", "386")
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := info.Types[st]
			if !ok {
				return true
			}
			styp, ok := tv.Type.(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, styp.NumFields())
			for i := range fields {
				fields[i] = styp.Field(i)
			}
			if len(fields) == 0 {
				return true
			}
			offsets := sizes386.Offsetsof(fields)
			for i, f := range fields {
				if !words[f] || sizes386.Sizeof(f.Type()) != 8 {
					continue
				}
				if offsets[i]%8 != 0 {
					pass.Reportf(fieldPos(st, i, f),
						"64-bit atomic field %s is at offset %d under 32-bit layout; move 64-bit counters to the front of the struct or pad to 8-byte alignment",
						f.Name(), offsets[i])
				}
			}
			return true
		})
	}

	// Pass 2b: any other access to an atomic word is a tear/race.
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND && allowed[n.X] {
					return false
				}
			case *ast.SelectorExpr:
				if obj := info.Uses[n.Sel]; obj != nil && words[obj] {
					pass.Reportf(n.Pos(),
						"access to %s without sync/atomic; it is updated atomically elsewhere, so plain reads and writes race and can tear",
						obj.Name())
				}
				ast.Inspect(n.X, visit)
				return false
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && words[obj] {
					pass.Reportf(n.Pos(),
						"access to %s without sync/atomic; it is updated atomically elsewhere, so plain reads and writes race and can tear",
						obj.Name())
				}
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}

// isAtomicPkgCall reports whether call invokes a package-level function of
// sync/atomic (Add*, Load*, Store*, Swap*, CompareAndSwap*). Methods on
// atomic.Int64 etc. have receivers and are not matched — those types are
// safe by construction.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil
}

// addressedObj resolves &x's operand to a trackable object: a struct
// field (via selector) or a variable. Index expressions (&s[i]) have no
// stable object and are not tracked; heap slices are 8-aligned anyway.
func addressedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.Ident:
		return lintutil.ObjOf(info, e)
	}
	return nil
}

// fieldPos returns the declaration position of the i-th flattened field
// of st (fields with shared type specs and embedded fields included),
// falling back to the field object's own position.
func fieldPos(st *ast.StructType, i int, f *types.Var) token.Pos {
	idx := 0
	for _, fld := range st.Fields.List {
		if len(fld.Names) == 0 {
			if idx == i {
				return fld.Type.Pos()
			}
			idx++
			continue
		}
		for _, name := range fld.Names {
			if idx == i {
				return name.Pos()
			}
			idx++
		}
	}
	return f.Pos()
}

// --- rule 3: observer passivity ---

func checkObserverPassivity(pass *analysis.Pass) {
	ifaces := observerInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv().Type()
			if !isObserverHook(recv, fd.Name.Name, ifaces) {
				continue
			}
			params := make(map[types.Object]bool)
			for _, f := range fd.Type.Params.List {
				for _, name := range f.Names {
					if obj := info.Defs[name]; obj != nil {
						params[obj] = true
					}
				}
			}
			checkHookBody(pass, fd, params)
		}
	}
}

// observerInterfaces collects every interface named `*Observer` visible
// to the package: its own scope plus direct imports (so obs.Registry is
// checked against core.Observer and transport.Observer).
func observerInterfaces(pkg *types.Package) []*types.Interface {
	var out []*types.Interface
	scopes := []*types.Scope{pkg.Scope()}
	for _, imp := range pkg.Imports() {
		scopes = append(scopes, imp.Scope())
	}
	for _, scope := range scopes {
		for _, name := range scope.Names() {
			if !strings.HasSuffix(name, "Observer") {
				continue
			}
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok || iface.NumMethods() == 0 {
				continue
			}
			out = append(out, iface)
		}
	}
	return out
}

// isObserverHook reports whether method name on receiver type recv is a
// hook of one of the observer interfaces.
func isObserverHook(recv types.Type, name string, ifaces []*types.Interface) bool {
	for _, iface := range ifaces {
		implements := types.Implements(recv, iface)
		if !implements {
			if _, isPtr := recv.(*types.Pointer); !isPtr {
				implements = types.Implements(types.NewPointer(recv), iface)
			}
		}
		if !implements {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == name {
				return true
			}
		}
	}
	return false
}

// checkHookBody flags writes through hook parameters. Rebinding the
// parameter itself (`n++` on a value copy) is harmless; writing through
// it (`span.Steps = 0`, `m[k] = v`, `*p = x`) mutates engine state the
// hook was only shown.
func checkHookBody(pass *analysis.Pass, fd *ast.FuncDecl, params map[types.Object]bool) {
	report := func(lhs ast.Expr) {
		root := lintutil.Root(lhs)
		if root == nil {
			return
		}
		obj := lintutil.ObjOf(pass.TypesInfo, root)
		if obj == nil || !params[obj] {
			return
		}
		pass.Reportf(lhs.Pos(),
			"observer hook %s must be passive: this writes state reachable from hook parameter %s",
			fd.Name.Name, root.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue // rebinding a local copy, not a write-through
				}
				report(lhs)
			}
		case *ast.IncDecStmt:
			if _, isIdent := n.X.(*ast.Ident); !isIdent {
				report(n.X)
			}
		}
		return true
	})
}
