package hotalloc_test

import (
	"strings"
	"testing"

	"knightking/internal/lint/analysistest"
	"knightking/internal/lint/hotalloc"
	"knightking/internal/lint/lintutil"
)

func TestHotalloc(t *testing.T) {
	res := analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotdemo")
	ws, _ := res[0].Value.([]lintutil.Waiver)
	found := false
	for _, w := range ws {
		if strings.Contains(w.Reason, "one-time setup slab") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasoned //kk:alloc-ok waiver not recorded; got %v", ws)
	}
}

// TestCrossPackageFacts pins the interprocedural boundary: a hot function
// calling into another module package must target a function that package
// exported as hot, resolved through the analyzer's facts.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotlib", "hotuse")
}
