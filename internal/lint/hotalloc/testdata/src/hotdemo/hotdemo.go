// Package hotdemo exercises the hotalloc analyzer: annotated hot
// functions, transitive reach, each allocation class, presized-append
// recognition, and waivers.
package hotdemo

import "fmt"

type walker struct {
	id   int64
	path []int32
}

type scratch struct {
	buf  []byte
	ws   []*walker
	hook func()
}

type sampler interface {
	Sample(int) int
}

type uniform struct{ n int }

// Sample is hot by annotation.
//
//kk:hotpath
func (u *uniform) Sample(x int) int { return x % u.n }

// step is the annotated hot root; helpers it calls become hot too.
//
//kk:hotpath
func step(s *scratch, w *walker, smp sampler) {
	s.buf = append(s.buf, byte(w.id)) // scratch field: fine
	advance(w, s)                     // transitively hot
	_ = smp.Sample(3)                 // dynamic call: not resolvable, not a finding
}

// advance is hot via step.
func advance(w *walker, s *scratch) {
	m := map[int]int{}            // want "map literal allocates"
	_ = m
	sl := []int{1, 2, 3}          // want "slice literal allocates"
	_ = sl
	p := &walker{id: 1}           // want "heap-escaping composite literal"
	_ = p
	b := make([]byte, 8)          // want "make allocates"
	_ = b
	q := new(walker)              // want "new allocates"
	_ = q
	var fresh []int32
	fresh = append(fresh, 1)      // want "append growth .* no presized origin"
	w.path = append(w.path, 9)    // field scratch: fine
	sized := make([]int32, 0, 16) // want "make allocates"
	sized = append(sized, 2)      // presized origin: fine
	_ = sized
	re := s.buf[:0]
	re = append(re, 1) // reslice origin: fine
	_ = re
}

// box is hot by annotation and demonstrates boxing findings.
//
//kk:hotpath
func box(w walker, s *scratch) interface{} {
	var i interface{}
	i = w        // want "interface boxing at assignment"
	sink(w)      // want "interface boxing at argument"
	sink(&w)     // pointer: no boxing
	sink(nil)    // nil: no boxing
	sink(i)      // already an interface: no boxing
	_ = i
	n := 0
	n++
	s.hook = func() { n++ } // want "capturing closure"
	s.hook = func() {}      // non-capturing: fine
	return w // want "interface boxing at return"
}

func sink(v interface{}) { _ = v }

// format is hot and calls fmt.
//
//kk:hotpath
func format(w *walker) {
	println(fmtWrap(w))
}

func fmtWrap(w *walker) string {
	return fmt.Sprint(w) // want "fmt call .* boxes its arguments"
}

// waived is hot with reasoned and unreasoned waivers.
//
//kk:hotpath
func waived() {
	b := make([]byte, 4) //kk:alloc-ok one-time setup slab, off the steady-state path
	_ = b
	//kk:alloc-ok
	c := make([]byte, 4) // want "waiver needs a reason"
	_ = c
}

// cold is not annotated and not reachable from a root: anything goes.
func cold() {
	_ = map[int]int{}
	_ = []int{1}
	_ = make([]byte, 1)
}
