// Package hotlib is the dependency side of the cross-package facts test:
// it exports Fast as part of its hot set and leaves Slow outside it.
package hotlib

// Fast is on the hot path.
//
//kk:hotpath
func Fast(x int) int { return x + 1 }

// Slow is not annotated and not reachable from a hot root here.
func Slow(x int) int { return x * 2 }
