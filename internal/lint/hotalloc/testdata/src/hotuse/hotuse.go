// Package hotuse is the dependent side of the cross-package facts test: a
// hot function may call hotlib.Fast (exported as hot by hotlib's facts)
// but not hotlib.Slow.
package hotuse

import "hotlib"

// Step is a hot root calling across the package boundary.
//
//kk:hotpath
func Step(x int) int {
	y := hotlib.Fast(x)
	y = hotlib.Slow(y) // want "not on that package's //kk:hotpath hot set"
	return y
}
