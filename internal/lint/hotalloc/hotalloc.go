// Package hotalloc implements the kklint analyzer guarding the engine's
// zero-alloc hot path. Functions annotated `//kk:hotpath` in their doc
// comment — and every in-package function they transitively call — form
// the hot set. Inside the hot set the analyzer forbids the constructs that
// put heap allocations on the steady-state walker/message path:
//
//   - map and slice composite literals, make, and new;
//   - heap-escaping composite literals (&T{...});
//   - capturing closures (a func literal that closes over local state
//     allocates its context on every evaluation);
//   - interface boxing: converting a concrete non-pointer-shaped value to
//     an interface type (call arguments, assignments, conversions, and
//     returns), including every call into package fmt;
//   - un-presized append growth: appending to a destination that is not a
//     struct-field scratch buffer, a parameter, or a local derived from a
//     capacity-carrying make or a reslice.
//
// Interprocedural reach: within the package, the hot set is the transitive
// closure over the call graph (internal/lint/analysis). Across packages,
// the analyzer exports the hot set as facts keyed by types.Func.FullName;
// a hot function calling into another module package must target a
// function that package exported as hot, otherwise the call leaves the
// audited region and is a finding. Packages without facts (the standard
// library, drivers without facts support) are exempt — their known-hot
// entry points are wrapped by annotated functions instead.
//
// Dynamic calls (interface methods, function values) cannot be resolved
// and are deliberately not findings: the hot path's interface calls target
// implementations that carry their own //kk:hotpath annotations (e.g. the
// sampling.StaticSampler implementations).
//
// Findings are waivable with `//kk:alloc-ok <reason>`; the reason should
// say why the allocation is off the steady-state path (amortized growth,
// error path, telemetry gated behind a nil check).
package hotalloc

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// Analyzer is the zero-alloc hot-path check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocations in //kk:hotpath functions and their transitive callees\n\n" +
		"The walker/message hot path is allocation-free by contract (AllocsPerRun ceilings in " +
		"internal/core); this analyzer catches composite literals, capturing closures, interface " +
		"boxing, un-presized appends, and calls that leave the audited hot set before they ship.",
	Run:   run,
	Facts: true,
}

// facts is the JSON payload exported per package: the FullNames of every
// function in the package's hot set.
type facts struct {
	Hot []string `json:"hot"`
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := analysis.BuildCallGraph(pass)

	// Roots: every declared function annotated //kk:hotpath.
	var roots []*types.Func
	for fn, node := range g.Nodes {
		if lintutil.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		if _, ok := node.Directive("hotpath"); ok {
			roots = append(roots, fn)
		}
	}
	var waivers []lintutil.Waiver
	if len(roots) == 0 {
		pass.WriteFacts(nil)
		return waivers, nil
	}

	hot := g.Reachable(roots, nil)

	// via[fn] names the annotated root through which fn entered the hot
	// set, for diagnostics on transitively hot functions.
	via := make(map[*types.Func]*types.Func)
	for _, r := range roots {
		for fn := range g.Reachable([]*types.Func{r}, nil) {
			if _, ok := via[fn]; !ok {
				via[fn] = r
			}
		}
	}

	// Deterministic iteration: sort hot functions by position.
	hotFns := make([]*types.Func, 0, len(hot))
	for fn := range hot {
		hotFns = append(hotFns, fn)
	}
	sort.Slice(hotFns, func(i, j int) bool { return hotFns[i].Pos() < hotFns[j].Pos() })

	for _, fn := range hotFns {
		node := g.NodeOf(fn)
		if node == nil || lintutil.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		c := &checker{
			pass:    pass,
			g:       g,
			node:    node,
			fn:      fn,
			root:    via[fn],
			hot:     hot,
			waivers: &waivers,
		}
		c.check()
	}

	// Export the hot set for downstream packages.
	f := facts{}
	for _, fn := range hotFns {
		f.Hot = append(f.Hot, fn.FullName())
	}
	sort.Strings(f.Hot)
	if blob, err := json.Marshal(f); err == nil {
		pass.WriteFacts(blob)
	}
	return waivers, nil
}

type checker struct {
	pass    *analysis.Pass
	g       *analysis.CallGraph
	node    *analysis.FuncNode
	fn      *types.Func
	root    *types.Func
	hot     map[*types.Func]bool
	waivers *[]lintutil.Waiver

	// addressed holds composite literals whose address is taken (&T{...}).
	addressed map[*ast.CompositeLit]bool
	// presized holds local slice objects with a capacity-carrying origin.
	presized map[types.Object]bool
}

// where names the hot function in diagnostics, including how it became hot
// when the annotation is inherited through the call graph.
func (c *checker) where() string {
	if c.root == nil || c.root == c.fn {
		return fmt.Sprintf("hot-path function %s", c.fn.Name())
	}
	return fmt.Sprintf("function %s (hot via //kk:hotpath root %s)", c.fn.Name(), c.root.Name())
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	lintutil.Waive(c.pass, c.pass.Fset, c.node.File, c.waivers,
		lintutil.AllocWaiverMarker, pos, msg)
}

func (c *checker) check() {
	body := c.node.Decl.Body
	c.addressed = make(map[*ast.CompositeLit]bool)
	c.presized = make(map[types.Object]bool)
	c.scanOrigins(body)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.addressed[cl] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.CallExpr:
			c.call(n)
		case *ast.FuncLit:
			c.funcLit(n)
		case *ast.AssignStmt:
			c.assignBoxing(n)
		case *ast.ReturnStmt:
			c.returnBoxing(n)
		}
		return true
	})
}

// scanOrigins records which local slice variables have a presized origin:
// a make with an explicit capacity, a reslice of existing storage
// (s[:0], buf[:n]), or a call result (pooled buffers).
func (c *checker) scanOrigins(body *ast.BlockStmt) {
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := lintutil.ObjOf(c.pass.TypesInfo, id)
		if obj == nil {
			return
		}
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if bid, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
				if b, isB := c.pass.TypesInfo.Uses[bid].(*types.Builtin); isB {
					if b.Name() == "make" && len(rhs.Args) == 3 {
						c.presized[obj] = true // make([]T, n, cap)
					}
					if b.Name() == "append" {
						return // keeps whatever origin it had
					}
					return
				}
			}
			c.presized[obj] = true // pooled/constructed storage from a call
		case *ast.SliceExpr:
			c.presized[obj] = true // reslice of existing storage
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								record(name, vs.Values[i])
							}
						}
					}
				}
			}
		}
		return true
	})
}

func (c *checker) compositeLit(cl *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.report(cl.Pos(), "map literal allocates in %s", c.where())
	case *types.Slice:
		c.report(cl.Pos(), "slice literal allocates in %s", c.where())
	case *types.Struct, *types.Array:
		if c.addressed[cl] {
			c.report(cl.Pos(), "heap-escaping composite literal (&%s{...}) in %s",
				types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)), c.where())
		}
	}
}

func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo

	// Conversions: flag concrete non-pointer-shaped → interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type.Underlying()) {
			c.boxing(call.Args[0], tv.Type, "conversion")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "make allocates in %s", c.where())
			case "new":
				c.report(call.Pos(), "new allocates in %s", c.where())
			case "append":
				c.appendCall(call)
			}
			return
		}
	}

	// fmt is wholesale forbidden: it boxes every argument and allocates
	// while formatting.
	callee := analysis.CalleeOf(info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "fmt call (%s) boxes its arguments and allocates in %s",
			callee.Name(), c.where())
		return
	}

	// Cross-package module calls must land on functions the callee package
	// exported as hot. Packages without facts are exempt.
	if callee != nil && callee.Pkg() != nil && callee.Pkg() != c.pass.Pkg {
		if blob := c.pass.ReadFacts(callee.Pkg().Path()); blob != nil {
			var f facts
			if err := json.Unmarshal(blob, &f); err == nil {
				found := false
				for _, name := range f.Hot {
					if name == callee.FullName() {
						found = true
						break
					}
				}
				if !found {
					c.report(call.Pos(),
						"call from %s into %s.%s, which is not on that package's //kk:hotpath hot set",
						c.where(), callee.Pkg().Name(), callee.Name())
				}
			}
		}
	}

	// Boxing at call arguments, resolved from the call's static signature
	// (works for interface-method calls too).
	var sig *types.Signature
	if tv, ok := info.Types[call.Fun]; ok {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = last // x... passes the slice itself
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt != nil && types.IsInterface(pt.Underlying()) {
			c.boxing(arg, pt, "argument")
		}
	}
}

// appendCall flags append growth into destinations without a presized
// origin: fresh or nil locals whose backing array append must grow on the
// hot path. Struct-field scratch buffers, parameters, and locals derived
// from capacity-carrying makes, reslices, or pooled call results pass.
func (c *checker) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	switch d := dst.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
		// Arena/scratch state (x.buf, bufs[i]) or an explicit reslice:
		// capacity management is the owner's job.
		_ = d
		return
	case *ast.Ident:
		obj := lintutil.ObjOf(c.pass.TypesInfo, d)
		if obj == nil {
			return
		}
		if c.presized[obj] {
			return
		}
		if v, ok := obj.(*types.Var); ok {
			if c.isParam(v) {
				return // caller-managed buffer (encode-into-buf pattern)
			}
		}
		c.report(call.Pos(),
			"append growth in %s: destination %s has no presized origin (make with capacity, reslice, or scratch field)",
			c.where(), d.Name)
	default:
		// append into a literal or call result: fresh allocation.
		c.report(call.Pos(), "append into a fresh destination allocates in %s", c.where())
	}
}

func (c *checker) isParam(v *types.Var) bool {
	sig, _ := c.fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	if sig.Recv() == v {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}

// boxing reports the conversion of a concrete non-pointer-shaped value to
// an interface type. Pointer-shaped values (pointers, channels, maps,
// funcs) fit in the interface word and do not allocate; constants are
// folded; nil and values already of interface type carry no boxing.
func (c *checker) boxing(arg ast.Expr, to types.Type, what string) {
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil || tv.IsNil() {
		return
	}
	at := tv.Type
	if types.IsInterface(at.Underlying()) {
		return
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if at.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	c.report(arg.Pos(),
		"interface boxing at %s in %s: %s value converted to %s allocates",
		what, c.where(),
		types.TypeString(at, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(to, types.RelativeTo(c.pass.Pkg)))
}

// assignBoxing flags assignments whose LHS has interface static type and
// RHS is a concrete non-pointer-shaped value.
func (c *checker) assignBoxing(as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		return // := infers the concrete type, no boxing
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt, ok := c.pass.TypesInfo.Types[as.Lhs[i]]
		if !ok || lt.Type == nil || !types.IsInterface(lt.Type.Underlying()) {
			continue
		}
		c.boxing(as.Rhs[i], lt.Type, "assignment")
	}
}

// returnBoxing flags returns of concrete non-pointer-shaped values from
// interface-typed results.
func (c *checker) returnBoxing(rs *ast.ReturnStmt) {
	sig, _ := c.fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() != len(rs.Results) {
		return
	}
	for i, res := range rs.Results {
		rt := sig.Results().At(i).Type()
		if types.IsInterface(rt.Underlying()) {
			c.boxing(res, rt, "return")
		}
	}
}

// funcLit flags capturing closures: a literal that references variables
// declared outside itself (but not package-level state) must allocate its
// context every time the literal is evaluated.
func (c *checker) funcLit(lit *ast.FuncLit) {
	info := c.pass.TypesInfo
	var captured *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == c.pass.Pkg.Scope() || obj.Parent() == types.Universe {
			return true // package-level or universe: no capture
		}
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		captured = id
		return false
	})
	if captured != nil {
		c.report(lit.Pos(),
			"capturing closure in %s: the literal closes over %s and allocates its context",
			c.where(), captured.Name)
	}
}
