// Call-graph construction for the interprocedural analyzers (hotalloc,
// barrierphase, goroleak). The graph is built once per package from the
// type-checked syntax and shared across analyzers via a per-Pass cache;
// callees are resolved statically within the package (direct function
// calls, method calls on concrete receivers). Calls through interfaces or
// function values have no resolvable callee and appear as dynamic sites —
// analyzers decide per-contract whether a dynamic site is a finding or a
// documented blind spot.
//
// Cross-package resolution rides on the driver's facts plumbing (see
// Pass.ImportFacts/ExportFacts in analysis.go): a package exports
// per-function summaries keyed by types.Func.FullName, and callers look
// those up instead of re-analyzing bodies they cannot see.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive is one `//kk:<name> <args>` annotation from a declaration's
// doc comment, e.g. `//kk:hotpath` or `//kk:phase compute,barrier`.
type Directive struct {
	Name string // without the "kk:" prefix, e.g. "hotpath", "phase"
	Args string // trimmed text after the name, may be empty
	Pos  token.Pos
}

// CallSite is one static call inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the resolved target, nil for dynamic calls (interface
	// methods, function values). Builtins and type conversions are not
	// recorded as call sites at all.
	Callee *types.Func
	// InFuncLit marks calls that occur inside a function literal nested in
	// the declaring function. They are attributed to the enclosing
	// declaration: a closure defined on the hot path runs on the hot path.
	InFuncLit bool
}

// FuncNode is one declared function or method with its resolved call sites
// and parsed annotations.
type FuncNode struct {
	Fn         *types.Func
	Decl       *ast.FuncDecl
	File       *ast.File
	Directives []Directive
	Calls      []CallSite
	// FuncLits are the function literals nested anywhere in the body.
	FuncLits []*ast.FuncLit
}

// Directive returns the first directive with the given name, if any.
func (n *FuncNode) Directive(name string) (Directive, bool) {
	for _, d := range n.Directives {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// CallGraph is the package's static call graph.
type CallGraph struct {
	Pass *Pass
	// Nodes maps every function/method declared in the package (with a
	// body) to its node.
	Nodes map[*types.Func]*FuncNode
	// callers is the reverse edge set, built lazily by Callers.
	callers map[*types.Func][]*FuncNode
}

// passCaches memoizes one CallGraph per Pass so the analyzers that share a
// driver invocation build it once.
var passCaches = map[*Pass]*CallGraph{}

// BuildCallGraph returns the package call graph for pass, building it on
// first use and caching it on the pass afterwards.
func BuildCallGraph(pass *Pass) *CallGraph {
	if g, ok := passCaches[pass]; ok {
		return g
	}
	g := &CallGraph{Pass: pass, Nodes: make(map[*types.Func]*FuncNode)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{
				Fn:         fn,
				Decl:       fd,
				File:       file,
				Directives: ParseDirectives(fd.Doc),
			}
			g.collectCalls(node, fd.Body, false)
			g.Nodes[fn] = node
		}
	}
	passCaches[pass] = g
	return g
}

// collectCalls walks body recording call sites and nested function
// literals on node.
func (g *CallGraph) collectCalls(node *FuncNode, body ast.Node, inLit bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			node.FuncLits = append(node.FuncLits, n)
			g.collectCalls(node, n.Body, true)
			return false
		case *ast.CallExpr:
			if tv, ok := g.Pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			callee := CalleeOf(g.Pass.TypesInfo, n)
			if callee == nil {
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := g.Pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						return true
					}
				}
			}
			node.Calls = append(node.Calls, CallSite{Call: n, Callee: callee, InFuncLit: inLit})
		}
		return true
	})
}

// CalleeOf statically resolves a call's target function: a package-level
// function, or a method on a concrete (non-interface) receiver. Returns
// nil for builtins, conversions, interface-method and function-value calls.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			// An interface-typed receiver makes the call dynamic.
			recv := sel.Recv()
			if types.IsInterface(recv) {
				return nil
			}
			return fn
		}
		// Qualified package call: pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// NodeOf returns the node for fn, or nil when fn is not declared (with a
// body) in this package.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	return g.Nodes[fn]
}

// Reachable computes the within-package transitive closure of callees from
// the given roots. When stop is non-nil, propagation does not descend
// through nodes for which stop returns true (the node itself is still
// included if it is a root); barrierphase uses this to let a function's
// own //kk:phase annotation override what it inherits from callers.
func (g *CallGraph) Reachable(roots []*types.Func, stop func(*FuncNode) bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		node := g.Nodes[fn]
		if node == nil || seen[fn] {
			return
		}
		seen[fn] = true
		for _, cs := range node.Calls {
			if cs.Callee == nil {
				continue
			}
			callee := g.Nodes[cs.Callee]
			if callee == nil || (stop != nil && stop(callee)) {
				continue
			}
			visit(cs.Callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// Callers returns the in-package functions containing a resolved call to fn.
func (g *CallGraph) Callers(fn *types.Func) []*FuncNode {
	if g.callers == nil {
		g.callers = make(map[*types.Func][]*FuncNode)
		for _, node := range g.Nodes {
			seen := make(map[*types.Func]bool)
			for _, cs := range node.Calls {
				if cs.Callee != nil && !seen[cs.Callee] {
					seen[cs.Callee] = true
					g.callers[cs.Callee] = append(g.callers[cs.Callee], node)
				}
			}
		}
	}
	return g.callers[fn]
}

// ParseDirectives extracts the `//kk:<name> <args>` lines from a doc
// comment group.
func ParseDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "kk:") {
			continue
		}
		rest := strings.TrimPrefix(text, "kk:")
		name := rest
		args := ""
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			name, args = rest[:i], strings.TrimSpace(rest[i+1:])
		}
		out = append(out, Directive{Name: name, Args: args, Pos: c.Pos()})
	}
	return out
}
