// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are (position, message) pairs.
//
// The repo deliberately has no external dependencies (see CONTRIBUTING.md),
// so kklint cannot import the real x/tools framework; this package keeps
// the same shape so the analyzers in internal/lint read like standard
// go/analysis code and could be ported to x/tools by swapping one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags. By
	// convention it is a single lowercase word.
	Name string
	// Doc is the help text: a one-line summary, a blank line, then detail.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics via
	// pass.Report. The returned value is the analyzer's result (e.g. the
	// waivers detrand recorded); drivers may expose it.
	Run func(pass *Pass) (interface{}, error)
	// Facts marks an analyzer that exports cross-package facts. Drivers
	// run only Facts analyzers over dependency-only units (standalone
	// deps outside the requested patterns, vet's VetxOnly units) so
	// downstream packages see their callees' contracts without paying
	// for — or panicking in — full analysis of code that was never a
	// lint target (e.g. the standard library).
	Facts bool
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzer run with a single type-checked package and a
// sink for diagnostics.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier facts.
	TypesInfo *types.Info
	// TypesSizes gives the target platform's layout rules. Drivers default
	// it to the host gc sizes; analyzers doing alignment math may also
	// consult 32-bit sizes directly.
	TypesSizes types.Sizes
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// ImportFacts returns the facts blob this same analyzer exported for a
	// previously analyzed package (by import path), or nil when none exist.
	// Drivers that do not support facts leave it nil; analyzers must treat
	// a nil blob as "no information", not as a violation.
	ImportFacts func(pkgPath string) []byte
	// ExportFacts records this package's facts blob (opaque to the driver,
	// conventionally JSON) for downstream packages' ImportFacts. Nil when
	// the driver does not support facts.
	ExportFacts func(blob []byte)
}

// ReadFacts is the nil-safe ImportFacts accessor.
func (p *Pass) ReadFacts(pkgPath string) []byte {
	if p.ImportFacts == nil {
		return nil
	}
	return p.ImportFacts(pkgPath)
}

// WriteFacts is the nil-safe ExportFacts accessor.
func (p *Pass) WriteFacts(blob []byte) {
	if p.ExportFacts != nil {
		p.ExportFacts(blob)
	}
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding in the source.
	Pos token.Pos
	// Category optionally subdivides an analyzer's findings.
	Category string
	// Message is the human-readable finding, lowercase, no trailing period.
	Message string
}

// NewInfo allocates a types.Info with every fact map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
