// Interprocedural dataflow summaries over the package call graph. Each
// summary is computed once per function and cached on the Summaries value;
// propagation runs to a fixpoint so mutually recursive functions converge.
//
// Two summaries are provided, both consumed by barrierphase's generalized
// hook-passivity rule (and reusable by future analyzers):
//
//   - write-through: which of a function's parameters (receiver included)
//     it may write through — directly (`p.X = v`, `*p = v`, `m[k] = v`) or
//     by passing the parameter to an in-package callee that writes through
//     the corresponding position.
//   - channel-send: whether a function may perform a channel send,
//     directly or via an in-package callee.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParamWrites summarizes one function: element i reports whether parameter
// i may be written through. The receiver, when present, is element 0 and
// the declared parameters follow (matching paramObjs ordering).
type ParamWrites []bool

// Summaries caches per-function dataflow facts for one package.
type Summaries struct {
	g *CallGraph
	// writes[fn] is fn's ParamWrites summary.
	writes map[*types.Func]ParamWrites
	// sends[fn] reports whether fn may send on a channel. The position is
	// the first direct send found (token.NoPos when the send is indirect).
	sends map[*types.Func]token.Pos
	// params[fn] is fn's receiver+parameter objects in summary order.
	params map[*types.Func][]types.Object
}

// Summarize computes the write-through and channel-send summaries for
// every function in the package, iterating to a fixpoint.
func Summarize(g *CallGraph) *Summaries {
	s := &Summaries{
		g:      g,
		writes: make(map[*types.Func]ParamWrites),
		sends:  make(map[*types.Func]token.Pos),
		params: make(map[*types.Func][]types.Object),
	}
	for fn, node := range g.Nodes {
		s.params[fn] = paramObjs(g.Pass.TypesInfo, node.Decl)
		s.writes[fn] = make(ParamWrites, len(s.params[fn]))
	}
	// Seed with the direct facts, then propagate through call sites until
	// nothing changes.
	for fn, node := range g.Nodes {
		s.seedDirect(fn, node)
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.Nodes {
			if s.propagate(fn, node) {
				changed = true
			}
		}
	}
	return s
}

// WritesThrough reports whether fn may write through the parameter (or
// receiver) declared by obj.
func (s *Summaries) WritesThrough(fn *types.Func, obj types.Object) bool {
	w := s.writes[fn]
	for i, p := range s.params[fn] {
		if p == obj && i < len(w) {
			return w[i]
		}
	}
	return false
}

// ParamWritesOf returns fn's write-through summary (receiver first), nil
// when fn is not declared in this package.
func (s *Summaries) ParamWritesOf(fn *types.Func) ParamWrites { return s.writes[fn] }

// Sends reports whether fn may perform a channel send; pos is the first
// direct send statement when the send is in fn's own body.
func (s *Summaries) Sends(fn *types.Func) (pos token.Pos, ok bool) {
	p, ok := s.sends[fn]
	return p, ok
}

// AliasesCaller reports whether writing through a value of type t can
// mutate memory the caller sees: pointers, maps, and slices alias; a
// by-value struct or array is the callee's own copy, so `p.X = v` on it
// is local. (A by-value struct holding a pointer that is then written
// through is a documented false negative — the walk-path types don't use
// that shape.)
func AliasesCaller(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

// paramObjs collects the receiver (if any) followed by the declared
// parameters of fd as type-checker objects.
func paramObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	lists := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil) // unnamed: cannot be written through
				continue
			}
			for _, name := range f.Names {
				out = append(out, info.Defs[name])
			}
		}
	}
	return out
}

// seedDirect records fn's own writes-through and channel sends.
func (s *Summaries) seedDirect(fn *types.Func, node *FuncNode) {
	info := s.g.Pass.TypesInfo
	mark := func(obj types.Object) {
		for i, p := range s.params[fn] {
			if p != nil && p == obj {
				s.writes[fn][i] = true
			}
		}
	}
	markLHS := func(lhs ast.Expr) {
		if _, isIdent := lhs.(*ast.Ident); isIdent {
			return // rebinding a local copy, not a write through
		}
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		if obj := objOf(info, root); obj != nil && AliasesCaller(obj.Type()) {
			mark(obj)
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markLHS(lhs)
			}
		case *ast.IncDecStmt:
			markLHS(n.X)
		case *ast.SendStmt:
			if _, ok := s.sends[fn]; !ok {
				s.sends[fn] = n.Arrow
			}
		}
		return true
	})
}

// propagate folds callee summaries into fn's: a parameter passed to an
// in-package callee position that is written through is itself written
// through, and calling a sender makes fn a sender. Reports whether fn's
// summary changed.
func (s *Summaries) propagate(fn *types.Func, node *FuncNode) bool {
	info := s.g.Pass.TypesInfo
	changed := false
	for _, cs := range node.Calls {
		callee := cs.Callee
		if callee == nil || s.g.Nodes[callee] == nil {
			continue
		}
		if _, sends := s.sends[callee]; sends {
			if _, ok := s.sends[fn]; !ok {
				s.sends[fn] = token.NoPos
				changed = true
			}
		}
		cw := s.writes[callee]
		if len(cw) == 0 {
			continue
		}
		// Align arguments with the callee's summary: receiver first for
		// method calls, then positional arguments. Variadic tail positions
		// all map to the last summary slot.
		args := calleeArgs(info, cs.Call, callee)
		for i, arg := range args {
			if i >= len(cw) || !cw[i] || arg == nil {
				continue
			}
			root := rootIdent(arg)
			if root == nil {
				continue
			}
			obj := objOf(info, root)
			if obj == nil {
				continue
			}
			for j, p := range s.params[fn] {
				if p == obj && !s.writes[fn][j] {
					s.writes[fn][j] = true
					changed = true
				}
			}
		}
	}
	return changed
}

// calleeArgs returns the expressions feeding each of callee's summary
// positions: the receiver expression (for method values), then the call
// arguments.
func calleeArgs(info *types.Info, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var out []ast.Expr
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	out = append(out, call.Args...)
	return out
}

// rootIdent unwraps selectors, indexes, slices, stars, parens, and type
// assertions down to the base identifier (a local copy of
// lintutil.Root, duplicated to keep this package dependency-free).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
