// Package dyndemo is a detrand fixture shaped like a delta-layer
// package: per-vertex delta segments held in a map. It is configured as
// a deterministic package, so ranging over the segment map — which
// would make the flattened overlay's edge order depend on map iteration
// order — must be flagged, while the collect-then-sort publish idiom
// passes clean.
package dyndemo

import "sort"

type edgeRec struct {
	dst int
	w   float32
}

type deltaLayer struct {
	segs map[int][]edgeRec
}

// flattenUnsorted is the bug the analyzer exists to catch: the overlay
// arrays come out in map order, so two applies of the same batch publish
// differently-ordered epochs.
func (d *deltaLayer) flattenUnsorted() []edgeRec {
	var out []edgeRec
	for _, seg := range d.segs { // want "map iteration order is nondeterministic"
		out = append(out, seg...)
	}
	return out
}

// flattenSorted is the sanctioned publish path: collect the touched
// vertices, sort, then emit segments in vertex order.
func (d *deltaLayer) flattenSorted() []edgeRec {
	var verts []int
	for v := range d.segs {
		verts = append(verts, v)
	}
	sort.Ints(verts)
	var out []edgeRec
	for _, v := range verts {
		out = append(out, d.segs[v]...)
	}
	return out
}
