// Package detdemo is a detrand fixture: it is configured as a
// deterministic package, so ambient randomness, wall-clock reads, and
// unordered map iteration must all be flagged unless waived or sorted.
package detdemo

import (
	"math/rand" // want "import of math/rand is forbidden in deterministic packages"
	"slices"
	"sort"
	"time"
)

func useRand() int { return rand.Int() }

func clock() time.Time {
	return time.Now() // want "wall-clock read in deterministic package"
}

func clockSince(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read in deterministic package"
}

func clockWaived() time.Duration {
	//kk:nondet-ok telemetry-only timing, never feeds walk state
	start := time.Now()
	//kk:nondet-ok telemetry-only timing, never feeds walk state
	return time.Since(start)
}

func clockWaiverNoReason() time.Time {
	//kk:nondet-ok
	return time.Now() // want "waiver needs a reason"
}

func mapRange(m map[int]string) {
	for k := range m { // want "map iteration order is nondeterministic"
		_ = k
	}
}

func mapRangeWaived(m map[int]int) int {
	sum := 0
	//kk:nondet-ok commutative sum, order-independent
	for _, v := range m {
		sum += v
	}
	return sum
}

// sortedKeys is the sanctioned idiom: collect keys, sort, iterate. No
// diagnostic and no waiver needed.
func sortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// slicesSortedKeys uses the slices package instead of sort; also clean.
func slicesSortedKeys(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// unsortedKeys collects keys but never sorts them, so the iteration order
// leaks into the result: flagged.
func unsortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m { // want "map iteration order is nondeterministic"
		ks = append(ks, k)
	}
	return ks
}

// sliceRange is not a map walk; never flagged.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
