package detdemo

import "time"

// Test files assert the determinism contract rather than being bound by
// it: counting walk endpoints in a map and reading the clock for timeouts
// are fine here, and detrand must stay silent.

func testOnlyClock() time.Time { return time.Now() }

func testOnlyMapRange(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
