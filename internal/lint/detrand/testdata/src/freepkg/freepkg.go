// Package freepkg is outside the deterministic set: detrand must ignore
// it entirely even though it reads the clock and walks a map.
package freepkg

import "time"

func Clock() time.Time { return time.Now() }

func Walk(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
