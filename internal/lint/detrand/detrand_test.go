package detrand

import (
	"testing"

	"knightking/internal/lint/analysistest"
	"knightking/internal/lint/lintutil"
)

func TestDetrand(t *testing.T) {
	a := NewAnalyzer(map[string]bool{"detdemo": true})
	results := analysistest.Run(t, "testdata", a, "detdemo", "freepkg")

	// The three reasoned waivers in detdemo must be recorded, reasons intact.
	waivers, ok := results[0].Value.([]lintutil.Waiver)
	if !ok {
		t.Fatalf("detdemo result is %T, want []lintutil.Waiver", results[0].Value)
	}
	if len(waivers) != 3 {
		t.Fatalf("recorded %d waivers in detdemo, want 3: %+v", len(waivers), waivers)
	}
	for _, w := range waivers {
		if w.Reason == "" {
			t.Errorf("waiver at %v recorded with empty reason", w.Pos)
		}
	}

	// freepkg is outside the deterministic set: no diagnostics, no waivers.
	if n := len(results[1].Diagnostics); n != 0 {
		t.Errorf("freepkg got %d diagnostics, want 0", n)
	}
	if results[1].Value != nil {
		if ws := results[1].Value.([]lintutil.Waiver); len(ws) != 0 {
			t.Errorf("freepkg recorded %d waivers, want 0", len(ws))
		}
	}
}
