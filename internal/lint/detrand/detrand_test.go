package detrand

import (
	"testing"

	"knightking/internal/lint/analysistest"
	"knightking/internal/lint/lintutil"
)

func TestDetrand(t *testing.T) {
	a := NewAnalyzer(map[string]bool{"detdemo": true})
	results := analysistest.Run(t, "testdata", a, "detdemo", "freepkg")

	// The three reasoned waivers in detdemo must be recorded, reasons intact.
	waivers, ok := results[0].Value.([]lintutil.Waiver)
	if !ok {
		t.Fatalf("detdemo result is %T, want []lintutil.Waiver", results[0].Value)
	}
	if len(waivers) != 3 {
		t.Fatalf("recorded %d waivers in detdemo, want 3: %+v", len(waivers), waivers)
	}
	for _, w := range waivers {
		if w.Reason == "" {
			t.Errorf("waiver at %v recorded with empty reason", w.Pos)
		}
	}

	// freepkg is outside the deterministic set: no diagnostics, no waivers.
	if n := len(results[1].Diagnostics); n != 0 {
		t.Errorf("freepkg got %d diagnostics, want 0", n)
	}
	if results[1].Value != nil {
		if ws := results[1].Value.([]lintutil.Waiver); len(ws) != 0 {
			t.Errorf("freepkg recorded %d waivers, want 0", len(ws))
		}
	}
}

// TestDetrandDeltaLayer pins the delta-layer case behind adding
// internal/dyngraph to the deterministic set: ranging over a map of
// per-vertex delta segments is flagged (the flattened overlay would
// inherit map iteration order), while the collect-then-sort publish
// idiom passes without a waiver.
func TestDetrandDeltaLayer(t *testing.T) {
	a := NewAnalyzer(map[string]bool{"dyndemo": true})
	results := analysistest.Run(t, "testdata", a, "dyndemo")
	if results[0].Value != nil {
		if ws := results[0].Value.([]lintutil.Waiver); len(ws) != 0 {
			t.Errorf("dyndemo recorded %d waivers, want 0", len(ws))
		}
	}
}

// TestDyngraphInDefaultSet guards the wiring itself: the real delta
// layer must be in the default deterministic set, so kklint runs cover
// it without extra configuration.
func TestDyngraphInDefaultSet(t *testing.T) {
	if !DefaultPackages["knightking/internal/dyngraph"] {
		t.Fatal("knightking/internal/dyngraph missing from detrand.DefaultPackages")
	}
}
