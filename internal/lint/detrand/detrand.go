// Package detrand implements the kklint analyzer enforcing the engine's
// determinism contract: a run is bit-identical from a single 64-bit seed.
//
// Inside the deterministic packages (the walk path: core, sampling, alg,
// checkpoint, and the codec/structure packages they feed) the analyzer
// forbids the three classic ways step-level reproducibility silently rots:
//
//   - ambient randomness: importing math/rand, math/rand/v2, or
//     crypto/rand. All randomness must flow through internal/rng streams,
//     which are seeded and serialized with the walker.
//   - wall-clock reads: time.Now / time.Since / time.Until. Telemetry-only
//     timing is sanctioned by CONTRIBUTING.md but must carry an explicit
//     `//kk:nondet-ok <reason>` waiver so every wall-clock read is a
//     reviewed decision, not an accident.
//   - unordered map iteration: a bare `for range m` over a map. Either
//     collect the keys and sort them (the analyzer recognizes the
//     collect-then-sort idiom and stays quiet) or waive with a reason
//     (e.g. a commutative sum/max reduction).
//
// Waivers are recorded, not discarded: the analyzer's result is the list
// of accepted waivers, and `kklint -waivers` prints them for audit.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// DefaultPackages is the deterministic set: every package whose output is
// pinned by golden tests to be a pure function of the seed. internal/obs
// and internal/bench are deliberately absent — they measure wall time by
// design and are kept away from walk state by the barrierphase analyzer's
// hook-passivity rule instead. internal/service is likewise absent:
// a job server timestamps lifecycle transitions by design, and every
// engine run it launches is covered transitively (core and below stay in
// the set; the payloadown and atomiccounter analyzers still apply to the
// whole repo, internal/service included).
var DefaultPackages = map[string]bool{
	"knightking/internal/core":       true,
	"knightking/internal/sampling":   true,
	"knightking/internal/alg":        true,
	"knightking/internal/checkpoint": true,
	"knightking/internal/rng":        true,
	"knightking/internal/graph":      true,
	"knightking/internal/trace":      true,
	"knightking/internal/stats":      true,
	"knightking/internal/gen":        true,
	"knightking/internal/cluster":    true,
	"knightking/internal/baseline":   true,
	"knightking/internal/embed":      true,
	// dyngraph publishes the epochs jobs are pinned to: iterating a map
	// of delta segments (or timestamping an epoch) would leak
	// nondeterminism into every walk on that epoch.
	"knightking/internal/dyngraph": true,
	// tracelog hooks directly into the engine's step loop (core.Tracer),
	// so it is held to the same standard as core: its timestamps are
	// telemetry-only and each wall-clock read carries a reviewed waiver.
	"knightking/internal/obs/tracelog": true,
	// coord hands out seeds, nonces, and partitions — anything nondeterministic
	// here (an unordered map range over seats, an unwaivered clock read) would
	// desynchronize ranks or break resumed-run bit-identity. Control-plane
	// liveness timing carries reviewed waivers. cmd/kkrank is in the set too
	// (unlike other CLIs) because it hosts the engine config between
	// coordinator messages.
	"knightking/internal/coord": true,
	"knightking/cmd/kkrank":     true,
}

// forbiddenImports are the ambient randomness sources. No waiver: a
// deterministic package has no legitimate use for them.
var forbiddenImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// clockFuncs are the time package's wall-clock reads (waivable).
var clockFuncs = []string{"Now", "Since", "Until"}

// Analyzer checks the repo's deterministic packages (DefaultPackages).
var Analyzer = NewAnalyzer(DefaultPackages)

// NewAnalyzer returns a detrand instance scoped to the given package-path
// set; tests scope it to fixture packages.
func NewAnalyzer(deterministic map[string]bool) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "detrand",
		Doc: "forbid ambient randomness, wall-clock reads, and unordered map iteration in deterministic packages\n\n" +
			"The engine's contract is that a run is bit-identical from one 64-bit seed; " +
			"this analyzer keeps math/rand, time.Now, and map iteration order out of the walk path.",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			return run(pass, deterministic)
		},
	}
}

func run(pass *analysis.Pass, deterministic map[string]bool) ([]lintutil.Waiver, error) {
	if !deterministic[pass.Pkg.Path()] {
		return nil, nil
	}
	var waivers []lintutil.Waiver

	// waive reports the finding at pos unless a reasoned waiver comment is
	// attached, in which case the waiver is recorded instead.
	waive := func(file *ast.File, pos token.Pos, msg string) {
		lintutil.Waive(pass, pass.Fset, file, &waivers, lintutil.WaiverMarker, pos, msg)
	}

	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path := importPath(imp)
			if forbiddenImports[path] {
				pass.Reportf(imp.Pos(),
					"import of %s is forbidden in deterministic packages; all randomness must flow through internal/rng streams",
					path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if lintutil.IsPkgCall(pass.TypesInfo, n, "time", clockFuncs...) {
					waive(file, n.Pos(),
						"wall-clock read in deterministic package; walk state must never depend on it — waive telemetry-only timing with //"+
							lintutil.WaiverMarker+" <reason>")
				}
			case *ast.RangeStmt:
				t := pass.TypesInfo.Types[n.X].Type
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if sortedKeyCollection(pass, file, n) {
					return true
				}
				waive(file, n.Pos(),
					"map iteration order is nondeterministic; collect and sort the keys, or waive an order-independent walk with //"+
						lintutil.WaiverMarker+" <reason>")
			}
			return true
		})
	}
	return waivers, nil
}

// importPath returns the unquoted import path of spec.
func importPath(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}

// sortedKeyCollection recognizes the deterministic map-walk idiom and
// suppresses the diagnostic for it:
//
//	for k := range m {            // keys only, single append
//	    keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)         // or any sort.*/slices.Sort* call
//
// The collected slice must later appear in a call into package sort or
// slices within the same function; iterating it afterwards is then
// deterministic.
func sortedKeyCollection(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) bool {
	// Keys only: `for k := range m` with no value (or a blank value).
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if v, ok := rs.Value.(*ast.Ident); rs.Value != nil && (!ok || v.Name != "_") {
		return false
	}
	// Body is exactly `dst = append(dst, k)`.
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || lintutil.ObjOf(pass.TypesInfo, arg0) != lintutil.ObjOf(pass.TypesInfo, dst) {
		return false
	}
	if arg1, ok := call.Args[1].(*ast.Ident); !ok ||
		lintutil.ObjOf(pass.TypesInfo, arg1) != lintutil.ObjOf(pass.TypesInfo, key) {
		return false
	}
	dstObj := lintutil.ObjOf(pass.TypesInfo, dst)
	if dstObj == nil {
		return false
	}

	// The collected slice must reach a sort after the loop, in the same
	// function (the file-level walk finds the innermost one containing rs).
	fn := enclosingFunc(file, rs)
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && lintutil.ObjOf(pass.TypesInfo, id) == dstObj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// enclosingFunc returns the body of the innermost function (decl or
// literal) containing n.
func enclosingFunc(file *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncDecl:
			if m.Body != nil && m.Body.Pos() <= n.Pos() && n.End() <= m.Body.End() {
				body = m.Body
			}
		case *ast.FuncLit:
			if m.Body.Pos() <= n.Pos() && n.End() <= m.Body.End() {
				body = m.Body
			}
		}
		return true
	})
	return body
}

// isSortCall reports whether call invokes anything in package sort or
// slices (sort.Strings, sort.Slice, slices.Sort, slices.SortFunc, ...).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sort" || obj.Pkg().Path() == "slices"
}
