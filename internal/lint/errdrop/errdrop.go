// Package errdrop implements the kklint analyzer forbidding silently
// discarded error results in the deterministic walk-path packages. A
// dropped error there is worse than a crash: the walk keeps going with
// state the failed call never produced, and the divergence surfaces
// superstep later as a nondeterminism bug.
//
// A call whose results include an error must consume it; using the call
// as a bare statement (`enc.Encode(v)`) or deferring it (`defer
// f.Close()`) is a finding. The sanctioned discard is an explicit blank
// assignment (`_ = f.Close()`, `defer func() { _ = f.Close() }()`),
// which is visible in review and greppable. There is no waiver marker:
// `_ =` is the waiver, and it costs less than a comment.
//
// The scope is detrand's deterministic package set — the packages whose
// outputs are pinned by golden tests — and, like detrand, test files are
// exempt (the testing package's error discipline is t.Fatal).
package errdrop

import (
	"go/ast"
	"go/types"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/detrand"
	"knightking/internal/lint/lintutil"
)

// Analyzer checks the deterministic walk-path packages.
var Analyzer = NewAnalyzer(detrand.DefaultPackages)

// NewAnalyzer returns an errdrop instance scoped to the given
// package-path set; tests scope it to fixture packages.
func NewAnalyzer(scoped map[string]bool) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "errdrop",
		Doc: "forbid silently discarded error results on the deterministic walk path\n\n" +
			"Calls returning an error may not be used as bare or deferred statements; " +
			"consume the error or discard it explicitly with `_ =`.",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			return run(pass, scoped)
		},
	}
}

func run(pass *analysis.Pass, scoped map[string]bool) (interface{}, error) {
	if !scoped[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				checkCall(pass, n.Call, "goroutine-spawned ")
			}
			return true
		})
	}
	return nil, nil
}

// checkCall reports when call's results include an error that the
// statement form necessarily discards.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, how string) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.IsType() {
		return
	}
	if !returnsError(tv.Type) {
		return
	}
	pass.Reportf(call.Pos(),
		"error result of %s%s is silently discarded; handle it or write `_ =` to discard it explicitly",
		how, calleeName(call))
}

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether a call-result type includes error.
func returnsError(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
	default:
		return types.Identical(t, errorType)
	}
	return false
}

// calleeName renders the called function for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
