// Package errdemo exercises the errdrop analyzer: bare, deferred, and
// goroutine-spawned discards, tuple results, and the sanctioned `_ =`.
package errdemo

import "errors"

type closer struct{}

func (c *closer) Close() error { return nil }

func fail() error { return errors.New("no") }

func pair() (int, error) { return 0, nil }

func clean() (int, int) { return 1, 2 }

func demo(c *closer) {
	fail()          // want "error result of fail is silently discarded"
	c.Close()       // want "error result of Close is silently discarded"
	defer c.Close() // want "error result of deferred Close is silently discarded"
	go fail()       // want "error result of goroutine-spawned fail is silently discarded"
	pair()          // want "error result of pair is silently discarded"

	_ = fail() // explicit discard: sanctioned
	if err := fail(); err != nil {
		_ = err
	}
	_, _ = pair()
	defer func() { _ = c.Close() }() // sanctioned deferred discard
	clean()                          // no error result: fine
	println("x")                     // builtin: fine
}
