// Package errquiet drops an error but sits outside the analyzer's scoped
// package set, so no diagnostics fire.
package errquiet

import "errors"

func fail() error { return errors.New("no") }

func drop() {
	fail()
}
