package errdrop_test

import (
	"testing"

	"knightking/internal/lint/analysistest"
	"knightking/internal/lint/errdrop"
)

func TestErrdrop(t *testing.T) {
	a := errdrop.NewAnalyzer(map[string]bool{"errdemo": true})
	analysistest.Run(t, "testdata", a, "errdemo")
}

// TestOutOfScope pins the package gate.
func TestOutOfScope(t *testing.T) {
	a := errdrop.NewAnalyzer(map[string]bool{"other": true})
	res := analysistest.Run(t, "testdata", a, "errquiet")
	if len(res[0].Diagnostics) != 0 {
		t.Errorf("out-of-scope package produced diagnostics: %v", res[0].Diagnostics)
	}
}
