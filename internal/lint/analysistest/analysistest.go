// Package analysistest runs a kklint analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// fixtures read identically.
//
// Fixture layout: testdata/src/<pkg>/*.go. Each line that should produce a
// diagnostic carries a trailing comment `// want "re"` (several quoted
// regexps for several diagnostics on one line). Fixture packages may import
// sibling fixture packages (resolved from testdata/src) and the standard
// library (resolved with the source importer, so no pre-built export data
// is needed).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"knightking/internal/lint/analysis"
)

// Result is the outcome of one analyzer run over one fixture package.
type Result struct {
	Pass        *analysis.Pass
	Diagnostics []analysis.Diagnostic
	// Value is what the analyzer's Run returned (e.g. detrand's waivers).
	Value interface{}
}

// Run loads each fixture package from dir/src/<pkg>, applies the analyzer,
// and reports mismatches between diagnostics and `// want` expectations as
// test errors. It returns one Result per package, in argument order.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) []Result {
	t.Helper()
	ld := &loader{
		fset:    token.NewFileSet(),
		srcdir:  filepath.Join(dir, "src"),
		imports: make(map[string]*types.Package),
		infos:   make(map[string]*pkgInfo),
	}
	var results []Result
	// Facts flow between fixture packages in argument order: list
	// dependencies before their dependents, as the driver's go list -deps
	// ordering does for real packages.
	factsByPkg := make(map[string][]byte)
	for _, pkg := range pkgs {
		info, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", pkg, err)
		}
		var diags []analysis.Diagnostic
		pkgPath := pkg
		pass := &analysis.Pass{
			Analyzer:    a,
			Fset:        ld.fset,
			Files:       info.files,
			Pkg:         info.pkg,
			TypesInfo:   info.info,
			TypesSizes:  types.SizesFor("gc", "amd64"),
			Report:      func(d analysis.Diagnostic) { diags = append(diags, d) },
			ImportFacts: func(path string) []byte { return factsByPkg[path] },
			ExportFacts: func(blob []byte) {
				if blob != nil {
					factsByPkg[pkgPath] = blob
				}
			},
		}
		value, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg, err)
		}
		check(t, ld.fset, info.files, diags)
		results = append(results, Result{Pass: pass, Diagnostics: diags, Value: value})
	}
	return results
}

type pkgInfo struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages, resolving imports from testdata/src
// first and from the standard library (source importer) otherwise.
type loader struct {
	fset    *token.FileSet
	srcdir  string
	imports map[string]*types.Package
	infos   map[string]*pkgInfo
	std     types.Importer
}

func (l *loader) load(path string) (*pkgInfo, error) {
	if info, ok := l.infos[path]; ok {
		return info, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	pi := &pkgInfo{pkg: pkg, files: files, info: info}
	l.infos[path] = pi
	l.imports[path] = pkg
	return pi, nil
}

// Import implements types.Importer over fixtures-then-stdlib.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if _, err := os.Stat(filepath.Join(l.srcdir, filepath.FromSlash(path))); err == nil {
		info, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return info.pkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.std.Import(path)
}

var wantRE = regexp.MustCompile(`want\s+(.*)`)

// expectation is one `// want "re"` on one fixture line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// check matches diagnostics against want comments, failing the test for
// unexpected diagnostics, unmatched expectations, or message mismatches.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantRE.FindStringSubmatch(text)
				if m == nil || !strings.HasPrefix(text, "want") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitQuoted extracts the double-quoted strings from a want payload:
// `"a" "b"` → ["a", "b"]. Escapes inside the quotes are kept verbatim
// (regexps rarely need a literal quote; fixtures avoid them).
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		s = s[i+1:]
		j := strings.IndexByte(s, '"')
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}
