// Package leakyquiet leaks a goroutine but sits outside the analyzer's
// scoped package set, so no diagnostics fire.
package leakyquiet

func spawn() {
	go func() {}()
}
