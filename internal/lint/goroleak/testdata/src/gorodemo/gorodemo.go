// Package gorodemo exercises the goroleak analyzer: each accepted join
// shape, the visible-body resolution levels, leaks, and waivers.
package gorodemo

import (
	"bytes"
	"context"
	"sync"
)

// wgLiteral joins through a local WaitGroup.
func wgLiteral(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// pool joins field-held workers: the spawn is a named method call and the
// Done/Wait pair lives on a struct field.
type pool struct {
	wg    sync.WaitGroup
	tasks chan int
}

func (p *pool) start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

func (p *pool) worker() {
	defer p.wg.Done()
	for range p.tasks {
	}
}

func (p *pool) stop() {
	close(p.tasks)
	p.wg.Wait()
}

// oneShot joins through a buffered completion channel received by the
// spawner.
func oneShot() error {
	done := make(chan error, 1)
	go func() {
		done <- nil
	}()
	return <-done
}

// quitLoop's goroutine receives from a channel the package closes.
type quitLoop struct {
	quit chan struct{}
}

func (q *quitLoop) run() {
	go func() {
		for {
			select {
			case <-q.quit:
				return
			}
		}
	}()
}

func (q *quitLoop) stop() { close(q.quit) }

// ctxBound ties the goroutine's lifetime to a cancellable context.
func ctxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// funcValue resolves a local function variable one level deep.
func funcValue() {
	var wg sync.WaitGroup
	work := func() {
		wg.Done()
	}
	wg.Add(1)
	go work()
	wg.Wait()
}

// closer signals completion by closing a channel the spawner receives on.
func closer() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// leak has no join signal at all.
func leak() {
	x := 0
	go func() { // want "goroutine has no provable join"
		x++
	}()
	_ = x
}

// halfJoin sends on a channel nobody receives from: the signal exists but
// the evidence does not.
func halfJoin() {
	orphan := make(chan int, 1)
	go func() { // want "goroutine has no provable join"
		orphan <- 1
	}()
}

// external spawns a method of another package; the body is invisible, so
// the join must be waived with a reason or it is a finding.
func external(b *bytes.Buffer) {
	go b.Reset() // want "goroutine body is not visible here"
	go b.Truncate(0) //kk:goro-ok Buffer methods return promptly; joined by process exit in this demo
}

// unreasoned shows the empty-waiver diagnostic.
func unreasoned() {
	//kk:goro-ok
	go func() {}() // want "waiver needs a reason"
}
