package goroleak_test

import (
	"strings"
	"testing"

	"knightking/internal/lint/analysistest"
	"knightking/internal/lint/goroleak"
	"knightking/internal/lint/lintutil"
)

func TestGoroleak(t *testing.T) {
	a := goroleak.NewAnalyzer(map[string]bool{"gorodemo": true})
	res := analysistest.Run(t, "testdata", a, "gorodemo")
	ws, _ := res[0].Value.([]lintutil.Waiver)
	found := false
	for _, w := range ws {
		if strings.Contains(w.Reason, "joined by process exit") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasoned //kk:goro-ok waiver not recorded; got %v", ws)
	}
}

// TestOutOfScope pins the package gate: the analyzer is silent on
// packages outside its scoped set.
func TestOutOfScope(t *testing.T) {
	a := goroleak.NewAnalyzer(map[string]bool{"otherpkg": true})
	res := analysistest.Run(t, "testdata", a, "leakyquiet")
	if len(res[0].Diagnostics) != 0 {
		t.Errorf("out-of-scope package produced diagnostics: %v", res[0].Diagnostics)
	}
}
