// Package goroleak implements the kklint analyzer requiring a provable
// join for every goroutine spawned in the engine's long-lived packages
// (core, transport, service, obs). A fire-and-forget goroutine outlives
// the superstep structure: it races shutdown, holds buffers past
// checkpoint restore, and turns clean BSP teardown into a timing bet.
//
// A `go` statement is considered joined when the goroutine body shows one
// of four accepted signals, matched against evidence elsewhere in the
// package:
//
//   - WaitGroup: the body calls Done on a sync.WaitGroup that some
//     function in the package Waits on.
//   - Completion channel: the body sends on (or closes) a channel that
//     the package receives from — the one-shot `done <- err` handshake.
//   - Closed-channel select: the body receives from a channel that the
//     package closes — the quit-channel worker loop.
//   - Context bound: the body consumes ctx.Done(), tying its lifetime to
//     a cancellable context.
//
// The body is the `go func(){...}` literal, the declaration of a named
// in-package callee (`go s.worker()`), or the literal bound to a local
// function variable (`go work()`) — one level deep. Spawns whose body
// cannot be seen (methods of other packages, e.g. `go srv.Serve(ln)`)
// have no provable join and need a `//kk:goro-ok <reason>` waiver naming
// the out-of-band join (e.g. Server.Shutdown).
//
// Object matching is by declaration (the wg variable or struct field),
// not by instance, and the evidence scan is package-wide — a deliberate
// approximation: the analyzer proves the join protocol exists, not that
// every path executes it. Test files are checked like any other file;
// tests leak goroutines across cases just as production code leaks them
// across supersteps.
package goroleak

import (
	"go/ast"
	"go/types"
	"strings"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/lintutil"
)

// DefaultPackages is the long-lived goroutine-owning set this analyzer
// guards. Short-lived CLIs (cmd/, examples/) exit with the process and
// are deliberately absent; bench harnesses join via b.N scoping.
var DefaultPackages = map[string]bool{
	"knightking/internal/core":            true,
	"knightking/internal/transport":       true,
	"knightking/internal/transport/chaos": true,
	"knightking/internal/service":         true,
	"knightking/internal/obs":             true,
	"knightking/internal/obs/tracelog":    true,
	// coord's coordinator and worker both live for a whole job and spawn
	// accept loops, read pumps, heartbeats, and engine attempts; every one
	// must be joined (or carry a reviewed waiver) or a failover leaks it.
	"knightking/internal/coord": true,
	"knightking/cmd/kkrank":     true,
}

// Analyzer checks the repo's goroutine-owning packages (DefaultPackages).
var Analyzer = NewAnalyzer(DefaultPackages)

// NewAnalyzer returns a goroleak instance scoped to the given
// package-path set; tests scope it to fixture packages.
func NewAnalyzer(scoped map[string]bool) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "goroleak",
		Doc: "require a provable join for every goroutine in the engine's long-lived packages\n\n" +
			"Every go statement must hand its goroutine to a WaitGroup that is Waited on, a " +
			"completion channel that is received from, a quit channel that is closed, or a " +
			"cancellable context; //kk:goro-ok <reason> waives a spawn with an out-of-band join.",
		Run: func(pass *analysis.Pass) (interface{}, error) {
			return run(pass, scoped)
		},
	}
}

func run(pass *analysis.Pass, scoped map[string]bool) ([]lintutil.Waiver, error) {
	// External test packages ("pkg_test") are held to the same standard
	// as the package they exercise.
	if !scoped[strings.TrimSuffix(pass.Pkg.Path(), "_test")] {
		return nil, nil
	}
	ev := collectEvidence(pass)
	var waivers []lintutil.Waiver
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pass, g)
			if body != nil && joined(pass, body, ev) {
				return true
			}
			msg := "goroutine has no provable join (WaitGroup Done/Wait, completion-channel receive, closed quit channel, or context bound)"
			if body == nil {
				msg = "goroutine body is not visible here (external callee or unresolved function value), so no join is provable"
			}
			lintutil.Waive(pass, pass.Fset, file, &waivers, lintutil.GoroWaiverMarker, g.Pos(), msg)
			return true
		})
	}
	return waivers, nil
}

// evidence is the package-wide join-side facts: which WaitGroup
// declarations are Waited on, which channel declarations are received
// from, and which are closed.
type evidence struct {
	waited   map[types.Object]bool
	received map[types.Object]bool
	closed   map[types.Object]bool
}

func collectEvidence(pass *analysis.Pass) *evidence {
	ev := &evidence{
		waited:   make(map[types.Object]bool),
		received: make(map[types.Object]bool),
		closed:   make(map[types.Object]bool),
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isWaitGroupMethod(info, sel, "Wait") {
					if obj := exprObj(info, sel.X); obj != nil {
						ev.waited[obj] = true
					}
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						if obj := exprObj(info, n.Args[0]); obj != nil {
							ev.closed[obj] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					if obj := exprObj(info, n.X); obj != nil {
						ev.received[obj] = true
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if obj := exprObj(info, n.X); obj != nil {
							ev.received[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return ev
}

// goroutineBody resolves the statement's goroutine to a visible body:
// the spawned function literal, the in-package declaration of a named
// callee, or the literal bound to a local function variable (one level).
func goroutineBody(pass *analysis.Pass, g *ast.GoStmt) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	}
	if callee := analysis.CalleeOf(pass.TypesInfo, g.Call); callee != nil {
		if node := analysis.BuildCallGraph(pass).NodeOf(callee); node != nil {
			return node.Decl.Body
		}
		return nil
	}
	// go work() on a local function variable: find the literal it was
	// bound to anywhere in the package.
	id, ok := ast.Unparen(g.Call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	target := lintutil.ObjOf(pass.TypesInfo, id)
	if target == nil {
		return nil
	}
	var body *ast.BlockStmt
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lintutil.ObjOf(pass.TypesInfo, lid) != target {
					continue
				}
				if lit, ok := as.Rhs[i].(*ast.FuncLit); ok {
					body = lit.Body
				}
			}
			return true
		})
	}
	return body
}

// joined reports whether body shows one of the accepted join signals
// backed by package-wide evidence.
func joined(pass *analysis.Pass, body *ast.BlockStmt, ev *evidence) bool {
	info := pass.TypesInfo
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			if isWaitGroupMethod(info, sel, "Done") {
				if obj := exprObj(info, sel.X); obj != nil && ev.waited[obj] {
					ok = true
				}
			}
			if isContextDone(info, sel) {
				ok = true
			}
		case *ast.SendStmt:
			if obj := exprObj(info, n.Chan); obj != nil && ev.received[obj] {
				ok = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if obj := exprObj(info, n.X); obj != nil && ev.closed[obj] {
					ok = true
				}
			}
		case *ast.RangeStmt:
			if obj := exprObj(info, n.X); obj != nil && ev.closed[obj] {
				ok = true
			}
		}
		return true
	})
	if ok {
		return true
	}
	// close(done) inside the body with a receiver elsewhere also joins
	// (the body signals completion by closing).
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || len(call.Args) != 1 {
			return true
		}
		id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
		if !isIdent || id.Name != "close" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if obj := exprObj(info, call.Args[0]); obj != nil && ev.received[obj] {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// isWaitGroupMethod reports whether sel names (*sync.WaitGroup).<name>.
func isWaitGroupMethod(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// isContextDone reports whether sel names context.Context's Done method.
func isContextDone(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// exprObj resolves a channel/WaitGroup expression to its stable
// declaration object: the variable for `wg`, the field for `s.wg`.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return lintutil.ObjOf(info, e)
	case *ast.SelectorExpr:
		return lintutil.ObjOf(info, e.Sel)
	case *ast.UnaryExpr:
		return exprObj(info, e.X)
	case *ast.StarExpr:
		return exprObj(info, e.X)
	}
	return nil
}
