package stats

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersSnapshotAndReset(t *testing.T) {
	var c Counters
	c.EdgeProbEvals.Add(10)
	c.Steps.Add(4)
	c.Trials.Add(6)
	s := c.Snapshot()
	if s.EdgeProbEvals != 10 || s.Steps != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.EdgesPerStep(); got != 2.5 {
		t.Fatalf("EdgesPerStep = %v", got)
	}
	if got := s.TrialsPerStep(); got != 1.5 {
		t.Fatalf("TrialsPerStep = %v", got)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Fatal("reset did not zero counters")
	}
}

func TestCountersRestoreAndAdd(t *testing.T) {
	var c Counters
	c.Steps.Add(3)
	c.Restore(Snapshot{Steps: 10, Queries: 2, Checkpoints: 1, CheckpointBytes: 64})
	s := c.Snapshot()
	if s.Steps != 10 || s.Queries != 2 || s.Checkpoints != 1 || s.CheckpointBytes != 64 {
		t.Fatalf("after Restore: %+v", s)
	}
	c.Add(Snapshot{Steps: 5, Queries: 1, RestoreNanos: 7})
	s = c.Snapshot()
	if s.Steps != 15 || s.Queries != 3 || s.RestoreNanos != 7 {
		t.Fatalf("after Add: %+v", s)
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Fatal("reset left checkpoint counters set")
	}
}

func TestHistogramStateRoundTrip(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	st := h.State()
	if st.Count != 3 || st.Sum != 7 || st.Max != 3 {
		t.Fatalf("state = %+v", st)
	}

	h2 := NewHistogram(8)
	h2.Observe(5)
	if err := h2.AddState(st); err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 4 || h2.Max() != 5 || h2.Bucket(3) != 2 {
		t.Fatalf("after AddState: count=%d max=%d", h2.Count(), h2.Max())
	}
	if got := h2.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}

	if err := NewHistogram(4).AddState(st); err == nil {
		t.Fatal("AddState accepted mismatched bucket counts")
	}
}

func TestEdgesPerStepZeroSteps(t *testing.T) {
	var s Snapshot
	if s.EdgesPerStep() != 0 || s.TrialsPerStep() != 0 {
		t.Fatal("zero-step ratios should be 0")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Steps.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Steps.Load(); got != 8000 {
		t.Fatalf("Steps = %d, want 8000", got)
	}
}

func TestIterationLog(t *testing.T) {
	var l IterationLog
	for i := 0; i < 5; i++ {
		l.Append(IterationRecord{Iteration: i, ActiveWalkers: int64(100 - i)})
	}
	recs := l.Records()
	if len(recs) != 5 || l.Len() != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Iteration != i || r.ActiveWalkers != int64(100-i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Records returns a copy.
	recs[0].Iteration = 999
	if l.Records()[0].Iteration == 999 {
		t.Fatal("Records aliases internal storage")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int64{0, 1, 1, 5, 9, 50, -3} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 50 {
		t.Fatalf("max = %d", h.Max())
	}
	if h.Bucket(1) != 2 {
		t.Fatalf("bucket 1 = %d", h.Bucket(1))
	}
	if h.Bucket(10) != 1 { // overflow
		t.Fatalf("overflow bucket = %d", h.Bucket(10))
	}
	if h.Bucket(0) != 2 { // 0 and clamped -3
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(100)
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if q := h.Quantile(0.5); q < 48 || q > 52 {
		t.Fatalf("median = %d", q)
	}
	if q := h.Quantile(0.99); q < 95 {
		t.Fatalf("p99 = %d", q)
	}
	empty := NewHistogram(5)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(2)
	h.Observe(4)
	if h.Mean() != 3 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0) did not panic")
		}
	}()
	NewHistogram(0)
}

func TestTableWrite(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("deepwalk", 1.2345)
	tab.AddRow("ppr", 250*time.Millisecond)
	var buf bytes.Buffer
	if err := tab.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "deepwalk") || !strings.Contains(out, "1.234") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow(1, 2)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}
