package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report is the end-of-run summary: the paper's machine-independent
// metrics (edges/step, trial behavior) plus the operational numbers a
// scripted run wants on one line. kkwalk prints it (human form on stderr,
// or exactly one JSON line on stdout under -json), and `make bench-record`
// stores it in BENCH_*.json so perf PRs can diff against it.
//
// Build it only from a post-join counter snapshot (see the Counters doc);
// a mid-run snapshot may violate the cross-field invariants the ratios
// assume.
type Report struct {
	// Run identity.
	Algorithm string `json:"algorithm"`
	Vertices  int    `json:"vertices"`
	Edges     int64  `json:"edges"`
	Ranks     int    `json:"ranks"`

	// Volume.
	Walkers      int64 `json:"walkers"`
	Steps        int64 `json:"steps"`
	Supersteps   int   `json:"supersteps"`
	LightSupers  int   `json:"light_supersteps"`
	Queries      int64 `json:"queries"`
	Messages     int64 `json:"messages"`
	BytesSent    int64 `json:"bytes_sent"`
	Restarts     int64 `json:"restarts,omitempty"`
	Terminations int64 `json:"terminations"`

	// The paper's machine-independent sampling metrics.
	EdgesPerStep  float64 `json:"edges_per_step"`
	TrialsPerStep float64 `json:"trials_per_step"`
	// PreAcceptRatio is the fraction of darts accepted below the lower
	// bound L without a Pd evaluation (the §4.2 lower-bound optimization).
	PreAcceptRatio float64 `json:"pre_accept_ratio"`
	// AppendixHitRatio is the fraction of darts landing in outlier
	// appendices (the §4.3 outlier folding optimization).
	AppendixHitRatio float64 `json:"appendix_hit_ratio"`

	// Wall-clock split.
	DurationSeconds float64 `json:"duration_seconds"`
	SetupSeconds    float64 `json:"setup_seconds"`
	ExchangeSeconds float64 `json:"exchange_seconds"`
	StepsPerSecond  float64 `json:"steps_per_second"`

	// StragglerSkew is max/mean of the per-rank total exchange time — 1.0
	// means a perfectly balanced cluster, higher means some rank spends
	// disproportionate time waiting at barriers. 0 when unknown (telemetry
	// off, or a multi-process rank that only sees itself).
	StragglerSkew float64 `json:"straggler_skew,omitempty"`

	// Checkpointing (zero when disabled).
	Checkpoints       int64   `json:"checkpoints,omitempty"`
	CheckpointBytes   int64   `json:"checkpoint_bytes,omitempty"`
	CheckpointSeconds float64 `json:"checkpoint_seconds,omitempty"`
	RestoreSeconds    float64 `json:"restore_seconds,omitempty"`

	// CriticalPath attributes the run's barriers to the ranks that gated
	// them (nil when tracing was off). Entries are sorted by rank; ranks
	// that never gated a barrier are omitted. Filled by the causal-trace
	// layer (internal/obs/tracelog) after the run.
	CriticalPath []RankGate `json:"critical_path,omitempty"`
}

// RankGate is one rank's share of a run's critical path: how many
// superstep barriers it gated (it was the last rank to finish its
// pre-barrier work, so every other rank waited on it) and the total
// pre-barrier time of the supersteps it gated.
type RankGate struct {
	Rank         int     `json:"rank"`
	Supersteps   int     `json:"supersteps"`
	GatedSeconds float64 `json:"gated_seconds"`
}

// RunInfo carries the non-counter inputs of a report.
type RunInfo struct {
	Algorithm   string
	Vertices    int
	Edges       int64
	Ranks       int
	Walkers     int64
	Supersteps  int
	LightSupers int
	Duration    time.Duration
	Setup       time.Duration
}

// NewReport derives a report from a post-join counter snapshot and the
// run's shape. StragglerSkew is left 0; callers with per-rank telemetry
// (internal/obs) fill it in afterwards.
func NewReport(s Snapshot, info RunInfo) Report {
	r := Report{
		Algorithm:    info.Algorithm,
		Vertices:     info.Vertices,
		Edges:        info.Edges,
		Ranks:        info.Ranks,
		Walkers:      info.Walkers,
		Steps:        s.Steps,
		Supersteps:   info.Supersteps,
		LightSupers:  info.LightSupers,
		Queries:      s.Queries,
		Messages:     s.Messages,
		BytesSent:    s.BytesSent,
		Restarts:     s.Restarts,
		Terminations: s.Terminations,

		EdgesPerStep:  s.EdgesPerStep(),
		TrialsPerStep: s.TrialsPerStep(),

		DurationSeconds: info.Duration.Seconds(),
		SetupSeconds:    info.Setup.Seconds(),
		ExchangeSeconds: time.Duration(s.ExchangeNanos).Seconds(),

		Checkpoints:       s.Checkpoints,
		CheckpointBytes:   s.CheckpointBytes,
		CheckpointSeconds: time.Duration(s.CheckpointNanos).Seconds(),
		RestoreSeconds:    time.Duration(s.RestoreNanos).Seconds(),
	}
	if s.Trials > 0 {
		r.PreAcceptRatio = float64(s.PreAccepts) / float64(s.Trials)
		r.AppendixHitRatio = float64(s.AppendixHits) / float64(s.Trials)
	}
	if secs := info.Duration.Seconds(); secs > 0 {
		r.StepsPerSecond = float64(s.Steps) / secs
	}
	return r
}

// JSONLine renders the report as exactly one line of JSON (no trailing
// newline), the -json output contract for scripted runs.
func (r Report) JSONLine() (string, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// WriteHuman renders the multi-line human summary.
func (r Report) WriteHuman(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"%s on |V|=%d |E|=%d over %d ranks: %d walkers, %d steps, %d supersteps (%d light) in %.3fs (setup %.3fs)\n"+
			"sampling: %.3f edges/step, %.3f trials/step, %.1f%% pre-accepted, %.1f%% appendix hits, %d queries\n"+
			"network: %d messages, %d bytes, %.3fs in exchanges",
		r.Algorithm, r.Vertices, r.Edges, r.Ranks, r.Terminations, r.Steps,
		r.Supersteps, r.LightSupers, r.DurationSeconds, r.SetupSeconds,
		r.EdgesPerStep, r.TrialsPerStep, 100*r.PreAcceptRatio, 100*r.AppendixHitRatio, r.Queries,
		r.Messages, r.BytesSent, r.ExchangeSeconds)
	if err != nil {
		return err
	}
	if r.StragglerSkew > 0 {
		if _, err := fmt.Fprintf(w, ", straggler skew %.2f", r.StragglerSkew); err != nil {
			return err
		}
	}
	if len(r.CriticalPath) > 0 {
		top := r.CriticalPath[0]
		for _, g := range r.CriticalPath[1:] {
			if g.Supersteps > top.Supersteps {
				top = g
			}
		}
		if _, err := fmt.Fprintf(w, ", critical path: rank %d gated %d/%d supersteps",
			top.Rank, top.Supersteps, r.Supersteps); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if r.Checkpoints > 0 || r.CheckpointSeconds > 0 || r.RestoreSeconds > 0 {
		if _, err := fmt.Fprintf(w,
			"checkpoint: %d committed, %d bytes, %.3fs snapshotting, %.3fs restoring\n",
			r.Checkpoints, r.CheckpointBytes, r.CheckpointSeconds, r.RestoreSeconds); err != nil {
			return err
		}
	}
	return nil
}
