// Package stats provides the atomic counters and per-iteration records the
// engine exposes, plus small formatting helpers for the benchmark harness.
// The central metric is EdgeProbEvals/Steps — the paper's machine-
// independent "edges/step" (number of edge transition probabilities
// computed per walker move, Tables 1 and 5, Figure 6).
package stats

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters aggregates engine activity. All fields are safe for concurrent
// update; read them after a run (or via Snapshot for a consistent-enough
// view mid-run).
//
// # The Snapshot consistency contract
//
// Snapshot loads each field with an individual atomic read; it does not
// stop the engine. That gives exactly two guarantees:
//
//  1. per-field atomicity — every value returned was the field's true
//     value at some instant during the Snapshot call (never a torn word),
//     and
//  2. per-field monotonicity — successive Snapshots of a running engine
//     never observe any individual counter decreasing.
//
// It deliberately does NOT guarantee cross-field consistency: the fields
// are read at slightly different instants, so mid-run invariants that
// couple fields (e.g. EdgeProbEvals >= Steps, or Trials >= PreAccepts) may
// be violated by a snapshot taken while workers are between the paired
// increments. Derived ratios such as EdgesPerStep are therefore
// approximations mid-run. For exact values — the run report, golden tests,
// checkpoint segments — snapshot only after the run goroutines have joined
// (core.Run/RunNode return) or at a superstep barrier, where no worker is
// mid-update. TestSnapshotConsistencyContract pins this contract.
type Counters struct {
	// EdgeProbEvals counts dynamic transition probability (Pd) evaluations.
	EdgeProbEvals atomic.Int64
	// Trials counts rejection-sampling darts thrown.
	Trials atomic.Int64
	// PreAccepts counts darts accepted below the lower bound L without a Pd
	// evaluation.
	PreAccepts atomic.Int64
	// AppendixHits counts darts landing in outlier appendices.
	AppendixHits atomic.Int64
	// Queries counts walker-to-vertex state queries issued.
	Queries atomic.Int64
	// Messages counts transport messages sent (walker moves + queries +
	// responses).
	Messages atomic.Int64
	// BytesSent counts transport payload bytes.
	BytesSent atomic.Int64
	// Steps counts successful walker moves.
	Steps atomic.Int64
	// Restarts counts restart teleports (random walk with restart).
	Restarts atomic.Int64
	// Terminations counts walkers that finished their walk.
	Terminations atomic.Int64
	// Checkpoints counts committed checkpoints (manifests written).
	Checkpoints atomic.Int64
	// CheckpointBytes counts snapshot segment bytes written.
	CheckpointBytes atomic.Int64
	// CheckpointNanos accumulates wall time spent encoding and writing
	// snapshot segments (summed across ranks).
	CheckpointNanos atomic.Int64
	// RestoreNanos accumulates wall time spent loading checkpointed state
	// back into the engine on resume.
	RestoreNanos atomic.Int64
	// ExchangeNanos accumulates wall time spent inside transport Exchange
	// calls (communication + barrier wait, summed across ranks) — the
	// denominator for separating network cost from compute.
	ExchangeNanos atomic.Int64
}

// Snapshot is a plain copy of the counter values. See the Counters doc for
// the consistency contract of snapshots taken while the engine is running.
type Snapshot struct {
	EdgeProbEvals int64
	Trials        int64
	PreAccepts    int64
	AppendixHits  int64
	Queries       int64
	Messages      int64
	BytesSent     int64
	Steps         int64
	Restarts      int64
	Terminations  int64

	Checkpoints     int64
	CheckpointBytes int64
	CheckpointNanos int64
	RestoreNanos    int64
	ExchangeNanos   int64
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		EdgeProbEvals: c.EdgeProbEvals.Load(),
		Trials:        c.Trials.Load(),
		PreAccepts:    c.PreAccepts.Load(),
		AppendixHits:  c.AppendixHits.Load(),
		Queries:       c.Queries.Load(),
		Messages:      c.Messages.Load(),
		BytesSent:     c.BytesSent.Load(),
		Steps:         c.Steps.Load(),
		Restarts:      c.Restarts.Load(),
		Terminations:  c.Terminations.Load(),

		Checkpoints:     c.Checkpoints.Load(),
		CheckpointBytes: c.CheckpointBytes.Load(),
		CheckpointNanos: c.CheckpointNanos.Load(),
		RestoreNanos:    c.RestoreNanos.Load(),
		ExchangeNanos:   c.ExchangeNanos.Load(),
	}
}

// Restore overwrites the counters with a previously captured snapshot, the
// inverse of Snapshot. Used when resuming a run from a checkpoint so that
// post-resume activity accumulates on top of pre-crash totals.
func (c *Counters) Restore(s Snapshot) {
	c.EdgeProbEvals.Store(s.EdgeProbEvals)
	c.Trials.Store(s.Trials)
	c.PreAccepts.Store(s.PreAccepts)
	c.AppendixHits.Store(s.AppendixHits)
	c.Queries.Store(s.Queries)
	c.Messages.Store(s.Messages)
	c.BytesSent.Store(s.BytesSent)
	c.Steps.Store(s.Steps)
	c.Restarts.Store(s.Restarts)
	c.Terminations.Store(s.Terminations)
	c.Checkpoints.Store(s.Checkpoints)
	c.CheckpointBytes.Store(s.CheckpointBytes)
	c.CheckpointNanos.Store(s.CheckpointNanos)
	c.RestoreNanos.Store(s.RestoreNanos)
	c.ExchangeNanos.Store(s.ExchangeNanos)
}

// Add accumulates a snapshot into the counters (used when merging per-rank
// checkpoint snapshots into a shared counter set).
func (c *Counters) Add(s Snapshot) {
	c.EdgeProbEvals.Add(s.EdgeProbEvals)
	c.Trials.Add(s.Trials)
	c.PreAccepts.Add(s.PreAccepts)
	c.AppendixHits.Add(s.AppendixHits)
	c.Queries.Add(s.Queries)
	c.Messages.Add(s.Messages)
	c.BytesSent.Add(s.BytesSent)
	c.Steps.Add(s.Steps)
	c.Restarts.Add(s.Restarts)
	c.Terminations.Add(s.Terminations)
	c.Checkpoints.Add(s.Checkpoints)
	c.CheckpointBytes.Add(s.CheckpointBytes)
	c.CheckpointNanos.Add(s.CheckpointNanos)
	c.RestoreNanos.Add(s.RestoreNanos)
	c.ExchangeNanos.Add(s.ExchangeNanos)
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.EdgeProbEvals.Store(0)
	c.Trials.Store(0)
	c.PreAccepts.Store(0)
	c.AppendixHits.Store(0)
	c.Queries.Store(0)
	c.Messages.Store(0)
	c.BytesSent.Store(0)
	c.Steps.Store(0)
	c.Restarts.Store(0)
	c.Terminations.Store(0)
	c.Checkpoints.Store(0)
	c.CheckpointBytes.Store(0)
	c.CheckpointNanos.Store(0)
	c.RestoreNanos.Store(0)
	c.ExchangeNanos.Store(0)
}

// EdgesPerStep returns EdgeProbEvals/Steps, the paper's edges/step metric
// (0 when no steps were taken).
func (s Snapshot) EdgesPerStep() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.EdgeProbEvals) / float64(s.Steps)
}

// TrialsPerStep returns rejection darts per successful move.
func (s Snapshot) TrialsPerStep() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.Trials) / float64(s.Steps)
}

// IterationRecord describes one engine superstep, for tail-behavior
// analysis (Figure 5) and scheduler studies (Figure 9).
type IterationRecord struct {
	Iteration     int
	ActiveWalkers int64
	Duration      time.Duration
	LightMode     bool
}

// IterationLog collects per-superstep records. Safe for concurrent Append.
type IterationLog struct {
	mu      sync.Mutex
	records []IterationRecord
}

// Append adds a record.
func (l *IterationLog) Append(r IterationRecord) {
	l.mu.Lock()
	l.records = append(l.records, r)
	l.mu.Unlock()
}

// Records returns a copy of the collected records in order.
func (l *IterationLog) Records() []IterationRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]IterationRecord, len(l.records))
	copy(out, l.records)
	return out
}

// Len returns the number of records.
func (l *IterationLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Histogram is a fixed-bucket integer histogram (e.g. walk lengths).
type Histogram struct {
	mu      sync.Mutex
	buckets []int64
	max     int64
	count   int64
	sum     int64
}

// NewHistogram creates a histogram with buckets [0..n-1] plus an overflow
// bucket for values >= n.
func NewHistogram(n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram requires n > 0")
	}
	return &Histogram{buckets: make([]int64, n+1)}
}

// Observe records a value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := v
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(len(h.buckets)-1) {
		idx = int64(len(h.buckets) - 1)
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the maximum observation.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Bucket returns the count in bucket i (the last bucket is overflow).
func (h *Histogram) Bucket(i int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets[i]
}

// HistogramState is a plain copy of a histogram's internals, used to
// serialize it into a checkpoint segment.
type HistogramState struct {
	Buckets []int64
	Count   int64
	Sum     int64
	Max     int64
}

// State captures the histogram for serialization.
func (h *Histogram) State() HistogramState {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := make([]int64, len(h.buckets))
	copy(buckets, h.buckets)
	return HistogramState{Buckets: buckets, Count: h.count, Sum: h.sum, Max: h.max}
}

// AddState merges a previously captured state into h (checkpoint restore).
// The bucket layouts must match, which they do whenever the run is resumed
// with the same algorithm configuration.
func (h *Histogram) AddState(s HistogramState) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(s.Buckets) != len(h.buckets) {
		return fmt.Errorf("stats: histogram has %d buckets, restored state has %d", len(h.buckets), len(s.Buckets))
	}
	for i, b := range s.Buckets {
		h.buckets[i] += b
	}
	h.count += s.Count
	h.sum += s.Sum
	if s.Max > h.max {
		h.max = s.Max
	}
	return nil
}

// Quantile returns the smallest value v such that at least q of the mass is
// <= v. Overflow observations count at the overflow bucket's index.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum > target {
			return int64(i)
		}
	}
	return int64(len(h.buckets) - 1)
}

// Table accumulates aligned rows for human-readable experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
