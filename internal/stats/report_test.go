package stats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleReport() Report {
	return NewReport(Snapshot{
		EdgeProbEvals: 900, Trials: 1200, PreAccepts: 300, AppendixHits: 60,
		Queries: 70, Messages: 40, BytesSent: 8192, Steps: 1000,
		Restarts: 5, Terminations: 50,
		Checkpoints: 2, CheckpointBytes: 4096,
		CheckpointNanos: int64(50 * time.Millisecond),
		ExchangeNanos:   int64(200 * time.Millisecond),
	}, RunInfo{
		Algorithm: "node2vec", Vertices: 100, Edges: 600, Ranks: 4,
		Walkers: 50, Supersteps: 20, LightSupers: 3,
		Duration: 2 * time.Second, Setup: 100 * time.Millisecond,
	})
}

func TestNewReportRatios(t *testing.T) {
	r := sampleReport()
	if r.EdgesPerStep != 0.9 {
		t.Errorf("edges/step = %v", r.EdgesPerStep)
	}
	if r.TrialsPerStep != 1.2 {
		t.Errorf("trials/step = %v", r.TrialsPerStep)
	}
	if r.PreAcceptRatio != 0.25 {
		t.Errorf("pre-accept ratio = %v", r.PreAcceptRatio)
	}
	if r.AppendixHitRatio != 0.05 {
		t.Errorf("appendix ratio = %v", r.AppendixHitRatio)
	}
	if r.StepsPerSecond != 500 {
		t.Errorf("steps/s = %v", r.StepsPerSecond)
	}
	if r.ExchangeSeconds != 0.2 {
		t.Errorf("exchange seconds = %v", r.ExchangeSeconds)
	}

	// Zero steps must not divide by zero.
	z := NewReport(Snapshot{}, RunInfo{})
	if z.EdgesPerStep != 0 || z.PreAcceptRatio != 0 || z.StepsPerSecond != 0 {
		t.Errorf("zero-snapshot report has nonzero ratios: %+v", z)
	}
}

// TestJSONLine pins the -json contract: exactly one line, valid JSON,
// round-tripping every field.
func TestJSONLine(t *testing.T) {
	r := sampleReport()
	r.StragglerSkew = 1.5
	line, err := r.JSONLine()
	if err != nil {
		t.Fatalf("JSONLine: %v", err)
	}
	if strings.ContainsAny(line, "\n\r") {
		t.Errorf("JSONLine contains a newline: %q", line)
	}
	var back Report
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Errorf("round trip changed the report:\n got %+v\nwant %+v", back, r)
	}
	for _, key := range []string{`"algorithm":"node2vec"`, `"edges_per_step":0.9`, `"straggler_skew":1.5`} {
		if !strings.Contains(line, key) {
			t.Errorf("JSON line missing %s: %s", key, line)
		}
	}
}

func TestWriteHuman(t *testing.T) {
	r := sampleReport()
	r.StragglerSkew = 2.25
	var b strings.Builder
	if err := r.WriteHuman(&b); err != nil {
		t.Fatalf("WriteHuman: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"node2vec on |V|=100 |E|=600 over 4 ranks",
		"0.900 edges/step",
		"25.0% pre-accepted",
		"straggler skew 2.25",
		"checkpoint: 2 committed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("human report missing %q:\n%s", want, out)
		}
	}

	// Without telemetry or checkpoints the optional lines disappear.
	var plain Report
	plain.Algorithm = "ppr"
	b.Reset()
	if err := plain.WriteHuman(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "straggler") || strings.Contains(b.String(), "checkpoint:") {
		t.Errorf("optional lines rendered for empty report:\n%s", b.String())
	}
}
