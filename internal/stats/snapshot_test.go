package stats

import (
	"sync"
	"testing"
)

// TestSnapshotConsistencyContract pins the documented guarantees of
// Counters.Snapshot: per-field atomicity and monotonicity while writers are
// running, and exact totals once they have joined. It deliberately does NOT
// assert cross-field invariants mid-run (the contract excludes them): a
// snapshot may see Steps updated but not yet EdgeProbEvals.
func TestSnapshotConsistencyContract(t *testing.T) {
	var c Counters
	const (
		writers = 4
		perW    = 50000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				// Paired increments, as the engine does: a step always
				// follows its trials.
				c.Trials.Add(2)
				c.EdgeProbEvals.Add(1)
				c.Steps.Add(1)
			}
		}()
	}

	// Reader: successive snapshots must never observe any individual field
	// decreasing, and every observed value must be one a prefix of the
	// increments could produce (0 <= v <= final).
	readerDone := make(chan error, 1)
	go func() {
		defer close(readerDone)
		var prev Snapshot
		for {
			s := c.Snapshot()
			if s.Trials < prev.Trials || s.Steps < prev.Steps || s.EdgeProbEvals < prev.EdgeProbEvals {
				t.Errorf("snapshot went backwards: %+v after %+v", s, prev)
				return
			}
			if s.Trials > writers*perW*2 || s.Steps > writers*perW {
				t.Errorf("snapshot overshot the total: %+v", s)
				return
			}
			prev = s
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-readerDone

	// Post-join the snapshot is exact, including cross-field invariants.
	s := c.Snapshot()
	if s.Steps != writers*perW {
		t.Errorf("final Steps = %d, want %d", s.Steps, writers*perW)
	}
	if s.Trials != 2*s.Steps {
		t.Errorf("final Trials = %d, want %d", s.Trials, 2*s.Steps)
	}
	if s.EdgeProbEvals != s.Steps {
		t.Errorf("final EdgeProbEvals = %d, want %d", s.EdgeProbEvals, s.Steps)
	}
}
