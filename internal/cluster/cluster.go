// Package cluster provides the distributed-execution scaffolding under the
// walk engine: the paper's 1-D vertex partitioner (§6.1) and a runner that
// executes one goroutine group per logical node over a transport group.
//
// KnightKing assigns each vertex (with all its out-edges) to exactly one
// node, and balances the sum of local vertex and edge counts across nodes —
// deliberately optimizing for even memory consumption rather than even
// walker traffic, since memory capacity is what forces distribution in the
// first place.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"knightking/internal/graph"
	"knightking/internal/transport"
)

// Partition is a contiguous 1-D assignment of vertices to nodes.
type Partition struct {
	// starts[i] is the first vertex owned by node i; starts[n] = |V|.
	starts []graph.VertexID
}

// Partition1D splits g's vertices into numNodes contiguous ranges so that
// each range's workload estimate, alpha·(vertex count) + (edge count), is
// near total/numNodes. alpha weighs vertex state against edge storage; the
// paper's "sum of a node's local vertex and edge counts" corresponds to
// alpha = 1.
func Partition1D(g *graph.Graph, numNodes int, alpha float64) *Partition {
	if numNodes <= 0 {
		panic(fmt.Sprintf("cluster: Partition1D with %d nodes", numNodes))
	}
	n := g.NumVertices()
	total := alpha*float64(n) + float64(g.NumEdges())
	target := total / float64(numNodes)

	starts := make([]graph.VertexID, numNodes+1)
	starts[numNodes] = graph.VertexID(n)
	node := 1
	acc := 0.0
	for v := 0; v < n && node < numNodes; v++ {
		acc += alpha + float64(g.Degree(graph.VertexID(v)))
		if acc >= target*float64(node) {
			starts[node] = graph.VertexID(v + 1)
			node++
		}
	}
	// Any ranges not assigned (possible when few vertices carry most of
	// the weight) become empty tail ranges.
	for ; node < numNodes; node++ {
		starts[node] = graph.VertexID(n)
	}
	return &Partition{starts: starts}
}

// NewPartition builds a partition from explicit range starts: starts[i] is
// node i's first vertex and starts[len-1] is |V|. Used when every rank
// must agree on a partition computed elsewhere (e.g. from a binary file's
// offset array before loading partition-local slices).
func NewPartition(starts []graph.VertexID) (*Partition, error) {
	if len(starts) < 2 {
		return nil, fmt.Errorf("cluster: partition needs at least 2 boundaries")
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("cluster: partition must start at vertex 0, got %d", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return nil, fmt.Errorf("cluster: partition boundaries not monotone at %d", i)
		}
	}
	out := make([]graph.VertexID, len(starts))
	copy(out, starts)
	return &Partition{starts: out}, nil
}

// Starts returns the partition's boundary array (copy), suitable for
// NewPartition on another rank.
func (p *Partition) Starts() []graph.VertexID {
	out := make([]graph.VertexID, len(p.starts))
	copy(out, p.starts)
	return out
}

// Partition1DFromDegrees is Partition1D computed from a bare degree array,
// for ranks that know every vertex's degree (e.g. from a binary CSR
// header) without holding the full edge data.
func Partition1DFromDegrees(degrees []int, numNodes int, alpha float64) *Partition {
	if numNodes <= 0 {
		panic(fmt.Sprintf("cluster: Partition1DFromDegrees with %d nodes", numNodes))
	}
	n := len(degrees)
	total := alpha * float64(n)
	for _, d := range degrees {
		total += float64(d)
	}
	target := total / float64(numNodes)
	starts := make([]graph.VertexID, numNodes+1)
	starts[numNodes] = graph.VertexID(n)
	node := 1
	acc := 0.0
	for v := 0; v < n && node < numNodes; v++ {
		acc += alpha + float64(degrees[v])
		if acc >= target*float64(node) {
			starts[node] = graph.VertexID(v + 1)
			node++
		}
	}
	for ; node < numNodes; node++ {
		starts[node] = graph.VertexID(n)
	}
	return &Partition{starts: starts}
}

// UniformPartition splits |V| vertices into equal-size contiguous ranges,
// ignoring edge counts. Used by tests and as a degenerate baseline.
func UniformPartition(numVertices, numNodes int) *Partition {
	if numNodes <= 0 {
		panic("cluster: UniformPartition with no nodes")
	}
	starts := make([]graph.VertexID, numNodes+1)
	for i := 0; i <= numNodes; i++ {
		starts[i] = graph.VertexID(i * numVertices / numNodes)
	}
	return &Partition{starts: starts}
}

// NumNodes returns the number of ranges.
func (p *Partition) NumNodes() int { return len(p.starts) - 1 }

// Owner returns the node owning vertex v.
func (p *Partition) Owner(v graph.VertexID) int {
	// Smallest i with starts[i+1] > v.
	i := sort.Search(p.NumNodes(), func(i int) bool { return p.starts[i+1] > v })
	if i == p.NumNodes() {
		panic(fmt.Sprintf("cluster: vertex %d outside partition", v))
	}
	return i
}

// Range returns the half-open vertex range [lo, hi) owned by node rank.
func (p *Partition) Range(rank int) (lo, hi graph.VertexID) {
	return p.starts[rank], p.starts[rank+1]
}

// Owns reports whether node rank owns vertex v.
func (p *Partition) Owns(rank int, v graph.VertexID) bool {
	return v >= p.starts[rank] && v < p.starts[rank+1]
}

// LoadEstimate returns node rank's alpha·|V|+|E| workload under g.
func (p *Partition) LoadEstimate(g *graph.Graph, rank int, alpha float64) float64 {
	lo, hi := p.Range(rank)
	load := alpha * float64(hi-lo)
	for v := lo; v < hi; v++ {
		load += float64(g.Degree(v))
	}
	return load
}

// Run executes fn once per endpoint, each on its own goroutine (one per
// logical cluster node), and waits for all to finish. It returns the first
// non-nil error. On error the remaining nodes are unblocked by closing the
// transport group.
func Run(eps []transport.Endpoint, fn func(rank int, ep transport.Endpoint) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(eps))
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer wg.Done()
			if err := fn(i, ep); err != nil {
				errs[i] = err
				_ = ep.Close() // best-effort: unblock peers stuck in Exchange
			}
		}(i, ep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
