package cluster

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/transport"
)

func TestUniformPartition(t *testing.T) {
	p := UniformPartition(100, 4)
	if p.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", p.NumNodes())
	}
	for rank := 0; rank < 4; rank++ {
		lo, hi := p.Range(rank)
		if hi-lo != 25 {
			t.Fatalf("rank %d owns %d vertices", rank, hi-lo)
		}
	}
}

func TestOwnerConsistentWithRange(t *testing.T) {
	g := gen.TruncatedPowerLaw(500, 2, 100, 2.0, 1)
	p := Partition1D(g, 5, 1)
	for v := 0; v < g.NumVertices(); v++ {
		owner := p.Owner(graph.VertexID(v))
		if !p.Owns(owner, graph.VertexID(v)) {
			t.Fatalf("Owner(%d) = %d but Owns is false", v, owner)
		}
		lo, hi := p.Range(owner)
		if graph.VertexID(v) < lo || graph.VertexID(v) >= hi {
			t.Fatalf("vertex %d outside its owner's range [%d,%d)", v, lo, hi)
		}
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	g := gen.UniformDegree(333, 7, 2)
	for _, n := range []int{1, 2, 3, 7, 16} {
		p := Partition1D(g, n, 1)
		covered := 0
		for rank := 0; rank < n; rank++ {
			lo, hi := p.Range(rank)
			covered += int(hi - lo)
		}
		if covered != g.NumVertices() {
			t.Fatalf("%d nodes cover %d of %d vertices", n, covered, g.NumVertices())
		}
	}
}

func TestPartition1DBalancesLoad(t *testing.T) {
	// Skewed graph: loads should still be within a reasonable factor, and
	// far better balanced than vertex counts alone would be.
	g := gen.TruncatedPowerLaw(2000, 2, 400, 2.0, 3)
	const n = 4
	p := Partition1D(g, n, 1)
	total := float64(g.NumVertices()) + float64(g.NumEdges())
	target := total / n
	for rank := 0; rank < n; rank++ {
		load := p.LoadEstimate(g, rank, 1)
		if load < 0.5*target || load > 1.5*target {
			t.Fatalf("rank %d load %v far from target %v", rank, load, target)
		}
	}
}

func TestPartitionMoreNodesThanVertices(t *testing.T) {
	g := gen.Ring(3, 0)
	p := Partition1D(g, 10, 1)
	covered := 0
	for rank := 0; rank < 10; rank++ {
		lo, hi := p.Range(rank)
		covered += int(hi - lo)
	}
	if covered != 3 {
		t.Fatalf("covered %d vertices", covered)
	}
	// All vertices must still have owners.
	for v := graph.VertexID(0); v < 3; v++ {
		p.Owner(v)
	}
}

func TestOwnerQuick(t *testing.T) {
	g := gen.UniformDegree(1000, 5, 4)
	p := Partition1D(g, 7, 1)
	f := func(raw uint32) bool {
		v := graph.VertexID(raw % 1000)
		owner := p.Owner(v)
		lo, hi := p.Range(owner)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllNodesExecute(t *testing.T) {
	eps := transport.NewInProcGroup(4)
	ran := make([]bool, 4)
	err := Run(eps, func(rank int, ep transport.Endpoint) error {
		ran[rank] = true
		if ep.Rank() != rank {
			return fmt.Errorf("endpoint rank %d != %d", ep.Rank(), rank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("node %d did not run", i)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	eps := transport.NewInProcGroup(3)
	sentinel := errors.New("node failure")
	err := Run(eps, func(rank int, ep transport.Endpoint) error {
		if rank == 1 {
			return sentinel
		}
		// Other nodes block in Exchange; the failing node's Close must
		// unblock them.
		_, err := ep.Exchange()
		if err == nil {
			return errors.New("exchange should have failed after peer close")
		}
		return nil
	})
	if !errors.Is(err, sentinel) && err == nil {
		t.Fatalf("Run error = %v, want %v", err, sentinel)
	}
}

func TestRunWithCommunication(t *testing.T) {
	eps := transport.NewInProcGroup(4)
	err := Run(eps, func(rank int, ep transport.Endpoint) error {
		// All-to-all "hello", then verify receipt.
		for to := 0; to < ep.Size(); to++ {
			ep.Send(to, 1, []byte{byte(rank)})
		}
		msgs, err := ep.Exchange()
		if err != nil {
			return err
		}
		if len(msgs) != 4 {
			return fmt.Errorf("rank %d got %d messages", rank, len(msgs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
