// Package knightking_test holds one testing.B benchmark per table and
// figure of the paper's evaluation, each delegating to the corresponding
// driver in internal/bench. Custom metrics surface the paper's key
// numbers: edges/step (edge transition probabilities computed per walker
// move) and speedup over the full-scan baseline.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// For full-size runs use the kkbench command instead (these benchmarks use
// reduced graph scales so the whole suite completes in minutes).
package knightking_test

import (
	"testing"

	"knightking/internal/bench"
)

// benchOpts returns sizes small enough for the full -bench=. sweep.
func benchOpts() bench.Options {
	return bench.Options{Scale: 0.25, Seed: 20191027, Nodes: 4}
}

func BenchmarkTable1(b *testing.B) {
	o := benchOpts()
	var lastFull, lastRej float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1Data(o)
		if err != nil {
			b.Fatal(err)
		}
		lastFull = rows[1].FullScanPerStep
		lastRej = rows[1].RejectionPerStep
	}
	b.ReportMetric(lastFull, "fullscan-edges/step")
	b.ReportMetric(lastRej, "rejection-edges/step")
}

func BenchmarkTable3(b *testing.B) {
	o := benchOpts()
	var n2vSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3Data(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "node2vec" && r.Graph == "Twitter" {
				n2vSpeedup = r.Speedup
			}
		}
	}
	b.ReportMetric(n2vSpeedup, "n2v-twitter-speedup")
}

func BenchmarkTable4(b *testing.B) {
	o := benchOpts()
	var n2vSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4Data(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "node2vec" && r.Graph == "Twitter" {
				n2vSpeedup = r.Speedup
			}
		}
	}
	b.ReportMetric(n2vSpeedup, "n2v-twitter-speedup")
}

func BenchmarkTable5a(b *testing.B) {
	o := benchOpts()
	var naive, lower float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5aData(o)
		if err != nil {
			b.Fatal(err)
		}
		naive = rows[1].NaiveEdgesPerStep
		lower = rows[1].LowerEdgesPerStep
	}
	b.ReportMetric(naive, "naive-edges/step")
	b.ReportMetric(lower, "lowerbound-edges/step")
}

func BenchmarkTable5b(b *testing.B) {
	o := benchOpts()
	var naive, both float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5bData(o)
		if err != nil {
			b.Fatal(err)
		}
		naive = rows[0].EdgesPerStep
		both = rows[3].EdgesPerStep
	}
	b.ReportMetric(naive, "naive-edges/step")
	b.ReportMetric(both, "L+O-edges/step")
}

func BenchmarkFig5(b *testing.B) {
	o := benchOpts()
	var walkIters, bfsIters float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig5Data(o)
		if err != nil {
			b.Fatal(err)
		}
		walkIters = float64(len(rows))
		bfsIters = 0
		for _, r := range rows {
			if r.BFSActive > 0 {
				bfsIters++
			}
		}
	}
	b.ReportMetric(bfsIters, "bfs-iterations")
	b.ReportMetric(walkIters, "walk-iterations")
}

func BenchmarkFig6a(b *testing.B) {
	o := benchOpts()
	var growth float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6aData(o)
		if err != nil {
			b.Fatal(err)
		}
		growth = rows[len(rows)-1].FullScanPerStep / rows[0].FullScanPerStep
	}
	b.ReportMetric(growth, "fullscan-growth")
}

func BenchmarkFig6b(b *testing.B) {
	o := benchOpts()
	var growth float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6bData(o)
		if err != nil {
			b.Fatal(err)
		}
		growth = rows[len(rows)-1].FullScanPerStep / rows[0].FullScanPerStep
	}
	b.ReportMetric(growth, "fullscan-growth")
}

func BenchmarkFig6c(b *testing.B) {
	o := benchOpts()
	var growth float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6cData(o)
		if err != nil {
			b.Fatal(err)
		}
		growth = rows[len(rows)-1].FullScanPerStep / rows[0].FullScanPerStep
	}
	b.ReportMetric(growth, "fullscan-growth")
}

func BenchmarkFig7(b *testing.B) {
	o := benchOpts()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7Data(o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].BaselineRatio
	}
	b.ReportMetric(ratio, "singlenode-speedup")
}

func BenchmarkFig8(b *testing.B) {
	o := benchOpts()
	var worstMixed, worstDec float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8Data(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.MixedTrials > worstMixed {
				worstMixed = r.MixedTrials
			}
			if r.DecoupledTrials > worstDec {
				worstDec = r.DecoupledTrials
			}
		}
	}
	b.ReportMetric(worstMixed, "mixed-trials/step")
	b.ReportMetric(worstDec, "decoupled-trials/step")
}

func BenchmarkFig9(b *testing.B) {
	o := benchOpts()
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9Data(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ImprovePct > best {
				best = r.ImprovePct
			}
		}
	}
	b.ReportMetric(best, "best-improvement-%")
}
