# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint test race bench bench-record bench-trend fuzz smoke experiments examples clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# kklint enforces the engine's written contracts (see CONTRIBUTING.md
# "Contract checking with kklint"): determinism, payload ownership, atomic
# counters, the zero-alloc //kk:hotpath set, //kk:phase discipline,
# goroutine joins, and error handling. Three passes: vet-mode over the
# non-test code, standalone -tests over the test variants (what CI runs),
# and the -waivers audit, which fails on stale or reasonless waivers.
lint:
	go build -o bin/kklint ./cmd/kklint
	go vet -vettool=$(CURDIR)/bin/kklint ./...
	go run ./cmd/kklint -tests ./...
	go run ./cmd/kklint -waivers ./... >/dev/null

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# The benchmark set tracked in BENCH_<pr>.json across PRs: the transport
# exchange hot path, the in-process engine controls, the dynamic-graph
# ingest/compaction path (ns/edge across |V| — the O(affected-vertex)
# check), and the telemetry run report (edges/step, trials/step,
# pre-accept ratio, straggler skew).
bench-record:
	go test -run=NONE -bench 'BenchmarkTCPExchangeManySmall|BenchmarkTCPExchange2x64KB|BenchmarkInProcExchange4x64KB' -benchmem -count=3 ./internal/transport/
	go test -run=NONE -bench 'BenchmarkEngineDeepWalk4Nodes|BenchmarkEngineNode2Vec4Nodes' -benchmem ./internal/core/
	go test -run=NONE -bench 'BenchmarkIngest|BenchmarkSamplerUpdate|BenchmarkCompact' -benchmem ./internal/dyngraph/
	go test -run=NONE -bench 'DeepWalk4Nodes|BenchmarkRingPut|BenchmarkExchangePeers|BenchmarkWritePerfetto' -benchmem ./internal/obs/tracelog/
	go run ./cmd/kkbench -report

# The benchmark set the CI trend job tracks continuously (engine steps/sec
# and allocs/op, interleaved and scalar): output feeds
# benchmark-action/github-action-benchmark, which graphs the history on
# gh-pages (dev/bench) and fails the build on a >10% ns/op regression.
bench-trend:
	go test -run=NONE -bench 'BenchmarkEngineDeepWalk4Nodes|BenchmarkEngineNode2Vec4Nodes' -benchmem -count=3 ./internal/core/ | tee bench-trend.txt

# Short fuzz pass over every fuzz target.
fuzz:
	go test -run=Fuzz -fuzz=FuzzReadEdgeList -fuzztime=15s ./internal/graph/
	go test -run=Fuzz -fuzz=FuzzReadBinary -fuzztime=15s ./internal/graph/
	go test -run=Fuzz -fuzz=FuzzEdgeListRoundTrip -fuzztime=15s ./internal/graph/
	go test -run=Fuzz -fuzz=FuzzDecodeWalker -fuzztime=15s ./internal/core/
	go test -run=Fuzz -fuzz=FuzzReadFrame -fuzztime=15s ./internal/transport/
	go test -run=Fuzz -fuzz=FuzzReadManifest -fuzztime=15s ./internal/checkpoint/
	go test -run=Fuzz -fuzz=FuzzRead -fuzztime=15s ./internal/trace/
	go test -run=Fuzz -fuzz=FuzzApplyDeltas -fuzztime=15s ./internal/dyngraph/

# End-to-end smoke tests of the three operator surfaces: the kkwalk admin
# server, the kkserve walk service, and the kkcoord/kkrank cluster
# (kill-a-rank failover + determinism diff).
smoke:
	./scripts/admin-smoke.sh
	./scripts/serve-smoke.sh
	./scripts/cluster-smoke.sh

# Regenerate every paper table and figure (see EXPERIMENTS.md).
experiments:
	go run ./cmd/kkbench -exp all

examples:
	go run ./examples/quickstart
	go run ./examples/node2vec
	go run ./examples/metapath
	go run ./examples/pprrank
	go run ./examples/tcpcluster
	go run ./examples/embeddings

clean:
	go clean ./...
