// Command kkserve is the long-running walk job server: it loads graphs
// once into a named registry and runs many walk jobs against them through
// a bounded scheduler, exposing an HTTP/JSON control surface.
//
// Usage:
//
//	kkserve -addr localhost:7474 -workers 2 -queue 64
//	kkserve -addr localhost:7474 -graph social=g.txt -graph web=w.bin:binary
//	kkserve -addr localhost:7474 -checkpoint-root /var/lib/kk/ckpt
//
// Graphs can be preloaded with repeated -graph name=path[:binary][:undirected]
// flags or loaded later via POST /graphs. Loaded graphs are dynamic:
// edge deltas ingested while the server runs publish new epochs, and
// each job is pinned to the epoch current at its admission. The API:
//
//	POST   /graphs                 {"name":..., "path":..., "binary":..., "undirected":...}
//	GET    /graphs
//	POST   /graphs/{name}/edges    {"edges":[{"src":0,"dst":1,"weight":2.5}, {"op":"delete",...}, ...]}
//	POST   /graphs/{name}/compact  fold the delta overlay into a fresh CSR
//	POST   /jobs                   {"graph":..., "alg":..., "seed":..., ...}
//	GET    /jobs                   all retained jobs
//	GET    /jobs/{id}              status (includes the pinned epoch)
//	GET    /jobs/{id}/result       walk report (done jobs)
//	GET    /jobs/{id}/trace        Perfetto JSON causal trace (jobs submitted with "trace": true)
//	DELETE /jobs/{id}              cancel, or discard a terminal job's record
//	GET    /metrics /statusz /healthz /debug/pprof
//
// SIGINT/SIGTERM shuts down cleanly: the HTTP server drains in-flight
// requests (bounded), and in-flight jobs are cancelled at their next
// superstep barrier before the process exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"knightking/internal/graph"
	"knightking/internal/service"
)

// graphFlags collects repeated -graph name=path[:binary][:undirected]
// values.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	var graphs graphFlags
	var (
		addr         = flag.String("addr", "localhost:7474", "HTTP listen address")
		workers      = flag.Int("workers", 2, "concurrent walk jobs")
		queue        = flag.Int("queue", 64, "admission queue depth (submissions beyond it get 429)")
		ckptRoot     = flag.String("checkpoint-root", "", "enable per-job checkpointing under this directory")
		compactAfter = flag.Int("compact-after", 0, "auto-compact a graph after this many ingested deltas (0 = explicit compaction only)")
		samplerKind  = flag.String("sampler-kind", "alias", "static sampler maintained across ingest for weighted graphs: alias|its")
	)
	flag.Var(&graphs, "graph", "preload a graph: name=path[:binary][:undirected] (repeatable)")
	flag.Parse()

	svc := service.New(service.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		CheckpointRoot: *ckptRoot,
		CompactAfter:   *compactAfter,
		SamplerKind:    *samplerKind,
	})

	for _, spec := range graphs {
		name, g, err := loadGraphFlag(spec)
		if err != nil {
			fatalf("%v", err)
		}
		info, err := svc.Graphs.Register(name, g)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "kkserve: loaded graph %q: %d vertices, %d edges, fingerprint %s\n",
			info.Name, info.Vertices, info.Edges, info.Fingerprint)
	}

	if err := svc.Start(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "kkserve: serving on http://%s\n", svc.Addr())

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	fmt.Fprintf(os.Stderr, "kkserve: received %v; cancelling outstanding jobs\n", sig)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "kkserve: received second %v; exiting immediately\n", sig)
		os.Exit(1)
	}()
	if err := svc.Close(); err != nil {
		fatalf("shutdown: %v", err)
	}
}

// loadGraphFlag parses one -graph value and loads the file.
func loadGraphFlag(spec string) (string, *graph.Graph, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return "", nil, fmt.Errorf("bad -graph %q (want name=path[:binary][:undirected])", spec)
	}
	parts := strings.Split(rest, ":")
	path := parts[0]
	var binary, undirected bool
	for _, opt := range parts[1:] {
		switch opt {
		case "binary":
			binary = true
		case "undirected":
			undirected = true
		default:
			return "", nil, fmt.Errorf("bad -graph option %q in %q", opt, spec)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return "", nil, fmt.Errorf("open graph %q: %v", path, err)
	}
	defer f.Close()
	var g *graph.Graph
	if binary {
		g, err = graph.ReadBinary(f)
	} else {
		g, err = graph.ReadEdgeList(f, undirected, 0)
	}
	if err != nil {
		return "", nil, fmt.Errorf("parse graph %q: %v", path, err)
	}
	return name, g, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "kkserve: "+format+"\n", args...)
	os.Exit(1)
}
