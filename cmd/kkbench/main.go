// Command kkbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	kkbench -list
//	kkbench -exp table3
//	kkbench -exp all -scale 2 -nodes 8
package main

import (
	"flag"
	"fmt"
	"os"

	"knightking/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale  = flag.Float64("scale", 1, "graph size multiplier")
		seed   = flag.Uint64("seed", 0, "seed (0 = default)")
		nodes  = flag.Int("nodes", 4, "simulated cluster nodes")
		quick  = flag.Bool("quick", false, "tiny smoke-test workloads")
		list   = flag.Bool("list", false, "list experiments and exit")
		report = flag.Bool("report", false, "run the standard telemetry workload and print its stats.Report JSON line (for make bench-record)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	o := bench.Options{
		Out:   os.Stdout,
		Scale: *scale,
		Seed:  *seed,
		Nodes: *nodes,
		Quick: *quick,
	}
	if *report {
		if err := bench.Report(o); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *exp == "all" {
		if err := bench.RunAll(o); err != nil {
			fatalf("%v", err)
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fatalf("unknown experiment %q (use -list)", *exp)
	}
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	if err := e.Run(o); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "kkbench: "+format+"\n", args...)
	os.Exit(1)
}
