// Command kkembed trains SkipGram-with-negative-sampling embeddings from a
// walk corpus (as produced by kkwalk -dump) and writes one vector per line.
//
// Usage:
//
//	kkwalk -graph g.txt -alg node2vec -dump walks.txt
//	kkembed -walks walks.txt -dim 64 -o vectors.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"knightking/internal/embed"
	"knightking/internal/graph"
	"knightking/internal/trace"
)

func main() {
	var (
		walksPath = flag.String("walks", "", "walk corpus file (required; text, one walk per line)")
		dim       = flag.Int("dim", 64, "embedding dimensionality")
		window    = flag.Int("window", 5, "SkipGram context window")
		negatives = flag.Int("negatives", 5, "negative samples per pair")
		epochs    = flag.Int("epochs", 3, "training epochs")
		lr        = flag.Float64("lr", 0.025, "initial learning rate")
		seed      = flag.Uint64("seed", 1, "training seed")
		out       = flag.String("o", "-", "output file (- = stdout)")
	)
	flag.Parse()
	if *walksPath == "" {
		fatalf("-walks is required")
	}

	f, err := os.Open(*walksPath)
	if err != nil {
		fatalf("open walks: %v", err)
	}
	corpus, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatalf("parse walks: %v", err)
	}
	fmt.Fprintf(os.Stderr, "corpus: %d walks, %d tokens, %d vertices\n",
		corpus.Len(), corpus.Tokens(), int(corpus.MaxVertex())+1)

	model, err := embed.Train(corpus, embed.Config{
		Dim: *dim, Window: *window, Negatives: *negatives,
		Epochs: *epochs, LearningRate: *lr, Seed: *seed,
	})
	if err != nil {
		fatalf("train: %v", err)
	}

	w := os.Stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			fatalf("create output: %v", err)
		}
		defer func() {
			if err := of.Close(); err != nil {
				fatalf("close output: %v", err)
			}
		}()
		w = of
	}
	bw := bufio.NewWriter(w)
	for v := 0; v < model.NumVertices(); v++ {
		fmt.Fprintf(bw, "%d", v)
		for _, x := range model.Vector(graph.VertexID(v)) {
			fmt.Fprintf(bw, " %.6f", x)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d × %d-dim vectors\n", model.NumVertices(), model.Dim())
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "kkembed: "+format+"\n", args...)
	os.Exit(1)
}
