// Command kkcoord is the cluster coordinator: it owns one walk job's
// spec, seats kkrank workers into ranks, hands out the 1-D partition and
// the data-plane peer list, releases the start barrier, and fails over —
// abort, re-handout, resume from the newest complete checkpoint — when a
// rank dies mid-run.
//
// Usage:
//
//	kkcoord -graph g.txt -alg deepwalk -length 80 -ranks 3 \
//	        -checkpoint-dir /shared/ckpt -dump-dir /shared/walks
//	kkrank -coord <addr>     # once per rank (plus optional spares)
//
// The control address is printed on stderr (and written to -addr-file for
// scripts); workers need nothing else on their command line. -admin-addr
// serves /metrics (kk_rank_up, kk_rank_heartbeat_age_seconds,
// kk_failover_total, ...), /statusz, and /trace while the job runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"knightking/internal/coord"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "input graph file (required; must be readable by every worker)")
		binary     = flag.Bool("binary", false, "graph file is in binary CSR format (workers load only their slice)")
		undirected = flag.Bool("undirected", false, "double text edges into both directions")
		algName    = flag.String("alg", "deepwalk", "algorithm: deepwalk|ppr|rwr|metapath|node2vec")
		length     = flag.Int("length", 80, "walk length (deepwalk/rwr/metapath/node2vec)")
		pt         = flag.Float64("pt", 0.0125, "termination probability (ppr)")
		restart    = flag.Float64("restart", 0.15, "restart probability (rwr)")
		p          = flag.Float64("p", 2, "node2vec return parameter")
		q          = flag.Float64("q", 0.5, "node2vec in-out parameter")
		schemes    = flag.String("schemes", "0", "metapath schemes: comma-separated types, ';'-separated schemes")
		biased     = flag.Bool("biased", false, "weight-biased static component")
		walkers    = flag.Int("walkers", 0, "walker count (0 = |V|)")
		seed       = flag.Uint64("seed", 1, "run seed")
		workers    = flag.Int("workers", 4, "worker goroutines per rank")
		stepping   = flag.String("stepping", "", "stepping strategy: interleaved|scalar (empty = engine default)")
		batch      = flag.Int("batch", 0, "interleaved stepping batch size (0 = default)")
		netTimeout = flag.Duration("net-timeout", 30*time.Second, "exchange barrier + TCP deadline on the data plane (0 = wait forever)")
		ckptDir    = flag.String("checkpoint-dir", "", "shared checkpoint directory (enables failover resume)")
		ckptEvery  = flag.Int("checkpoint-every", 16, "supersteps between checkpoints")
		resume     = flag.Bool("resume", false, "resume the first attempt from -checkpoint-dir")
		dumpDir    = flag.String("dump-dir", "", "shared directory for per-rank walk dumps (walks-rankNNNNN.txt)")
		ranks      = flag.Int("ranks", 3, "cluster size (number of kkrank workers to seat)")
		control    = flag.String("control", "127.0.0.1:0", "control-plane listen address")
		addrFile   = flag.String("addr-file", "", "write the bound control address to this file (for scripts)")
		adminAddr  = flag.String("admin-addr", "", "serve /metrics, /statusz, /trace on this host:port")
		hbTimeout  = flag.Duration("heartbeat-timeout", coord.DefaultHeartbeatTimeout, "declare a rank dead after this much heartbeat silence")
		gatherTO   = flag.Duration("gather-timeout", 0, "fail the job if the cluster cannot assemble within this duration (0 = wait forever)")
		maxAtt     = flag.Int("max-attempts", coord.DefaultMaxAttempts, "give up after this many mesh attempts")
		tracePath  = flag.String("trace", "", "write the control-plane causal trace (Perfetto JSON) to this file at exit")
		jsonOut    = flag.Bool("json", false, "print the job summary as one JSON line on stdout")
	)
	flag.Parse()
	if *graphPath == "" {
		fatalf("-graph is required")
	}

	logger := log.New(os.Stderr, "kkcoord: ", log.Lmicroseconds)
	c, err := coord.New(coord.Options{
		Spec: coord.JobSpec{
			GraphPath:       *graphPath,
			GraphBinary:     *binary,
			Undirected:      *undirected,
			Alg:             *algName,
			Length:          *length,
			Pt:              *pt,
			Restart:         *restart,
			P:               *p,
			Q:               *q,
			Schemes:         *schemes,
			Biased:          *biased,
			Walkers:         *walkers,
			Seed:            *seed,
			Workers:         *workers,
			Stepping:        *stepping,
			BatchSize:       *batch,
			NetTimeoutMS:    netTimeout.Milliseconds(),
			CheckpointDir:   *ckptDir,
			CheckpointEvery: *ckptEvery,
			DumpDir:         *dumpDir,
		},
		Ranks:            *ranks,
		ControlAddr:      *control,
		AdminAddr:        *adminAddr,
		Resume:           *resume,
		HeartbeatTimeout: *hbTimeout,
		GatherTimeout:    *gatherTO,
		MaxAttempts:      *maxAtt,
		Logf:             logger.Printf,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "kkcoord: control address %s\n", c.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(c.Addr()), 0o644); err != nil {
			fatalf("write -addr-file: %v", err)
		}
	}

	sum, runErr := c.Run()

	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fatalf("create trace: %v", err)
		}
		w := bufio.NewWriter(tf)
		if err := c.WriteTrace(w); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := w.Flush(); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := tf.Close(); err != nil {
			fatalf("close trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "kkcoord: trace written to %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}

	if runErr != nil {
		fatalf("%v", runErr)
	}
	fmt.Fprintf(os.Stderr,
		"kkcoord: summary: %d supersteps, %d steps, %d terminations, %d messages, %d bytes, attempts=%d failovers=%d\n",
		sum.Iterations, sum.Steps, sum.Terminations, sum.Messages, sum.Bytes, sum.Attempts, sum.Failovers)
	if *jsonOut {
		b, err := json.Marshal(sum)
		if err != nil {
			fatalf("encode summary: %v", err)
		}
		fmt.Println(string(b))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "kkcoord: "+format+"\n", args...)
	os.Exit(1)
}
