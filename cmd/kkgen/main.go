// Command kkgen generates synthetic graphs in the repository's text or
// binary formats.
//
// Usage:
//
//	kkgen -kind uniform  -n 10000 -degree 10                 -o graph.txt
//	kkgen -kind powerlaw -n 10000 -min 3 -cap 1000 -alpha 2  -o graph.bin -format binary
//	kkgen -kind hotspot  -n 10000 -degree 100 -hot 2 -hotdeg 1000
//	kkgen -kind rmat     -scale 14 -edgefactor 16
//	kkgen -kind er       -n 10000 -edges 50000
//
// Optional post-processing: -weights uniform|powerlaw (with -maxweight),
// -types N assigns N symmetric edge types for meta-path workloads.
package main

import (
	"flag"
	"fmt"
	"os"

	"knightking/internal/gen"
	"knightking/internal/graph"
)

func main() {
	var (
		kind       = flag.String("kind", "uniform", "generator: uniform|powerlaw|hotspot|rmat|er|ring")
		n          = flag.Int("n", 10000, "vertex count (uniform/powerlaw/hotspot/er/ring)")
		degree     = flag.Int("degree", 10, "per-vertex degree (uniform/hotspot)")
		minDeg     = flag.Int("min", 3, "minimum degree (powerlaw)")
		capDeg     = flag.Int("cap", 1000, "degree cap (powerlaw)")
		alpha      = flag.Float64("alpha", 2.0, "power-law exponent")
		hot        = flag.Int("hot", 2, "hotspot count (hotspot)")
		hotDeg     = flag.Int("hotdeg", 1000, "hotspot degree (hotspot)")
		scale      = flag.Int("scale", 14, "log2 vertex count (rmat)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex (rmat)")
		edges      = flag.Int("edges", 50000, "edge count (er)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		weights    = flag.String("weights", "", "assign weights: uniform|powerlaw")
		maxWeight  = flag.Float64("maxweight", 5, "maximum edge weight")
		types      = flag.Int("types", 0, "assign this many edge types (0 = none)")
		out        = flag.String("o", "-", "output file (- = stdout)")
		format     = flag.String("format", "text", "output format: text|binary")
		quiet      = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "uniform":
		g = gen.UniformDegree(*n, *degree, *seed)
	case "powerlaw":
		g = gen.TruncatedPowerLaw(*n, *minDeg, *capDeg, *alpha, *seed)
	case "hotspot":
		g = gen.Hotspot(*n, *degree, *hot, *hotDeg, *seed)
	case "rmat":
		g = gen.RMAT(*scale, *edgeFactor, 0.57, 0.19, 0.19, *seed)
	case "er":
		g = gen.ErdosRenyi(*n, *edges, *seed)
	case "ring":
		g = gen.Ring(*n, *seed)
	default:
		fatalf("unknown -kind %q", *kind)
	}

	switch *weights {
	case "":
	case "uniform":
		g = gen.WithUniformWeights(g, 1, float32(*maxWeight), *seed+1)
	case "powerlaw":
		g = gen.WithPowerLawWeights(g, float32(*maxWeight), 2.0, *seed+1)
	default:
		fatalf("unknown -weights %q", *weights)
	}
	if *types > 0 {
		g = gen.WithTypes(g, *types, *seed+2)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", *out, err)
			}
		}()
		w = f
	}
	var err error
	switch *format {
	case "text":
		err = graph.WriteEdgeList(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	default:
		fatalf("unknown -format %q", *format)
	}
	if err != nil {
		fatalf("write: %v", err)
	}
	if !*quiet {
		st := g.Stats()
		fmt.Fprintf(os.Stderr, "generated %s: |V|=%d |E|=%d degree mean=%.1f var=%.3g max=%d\n",
			*kind, g.NumVertices(), g.NumEdges(), st.Mean, st.Variance, st.Max)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "kkgen: "+format+"\n", args...)
	os.Exit(1)
}
