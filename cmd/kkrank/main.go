// Command kkrank is one cluster worker process. It registers with a
// kkcoord coordinator, receives its rank, partition slice, and peer list
// over the control plane, loads its share of the graph, joins the
// data-plane mesh, and runs the walk engine — resuming from the newest
// complete checkpoint after a failover. It needs almost no flags: the
// coordinator owns the job spec.
//
//	kkrank -coord 127.0.0.1:7700
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"knightking/internal/coord"
)

func main() {
	var (
		coordAddr = flag.String("coord", "", "coordinator control address (required)")
		listen    = flag.String("listen", "127.0.0.1:0", "data-plane listen address")
		hbEvery   = flag.Duration("heartbeat-every", coord.DefaultHeartbeatEvery, "heartbeat period")
		grace     = flag.Duration("abort-grace", coord.DefaultAbortGrace, "wait for aligned cancellation after an abort before force-closing the mesh")
	)
	flag.Parse()
	if *coordAddr == "" {
		_, _ = fmt.Fprintln(os.Stderr, "kkrank: -coord is required (start kkcoord first and pass its control address)")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, fmt.Sprintf("kkrank[%d]: ", os.Getpid()), log.Lmicroseconds)
	err := coord.RunWorker(coord.WorkerOptions{
		CoordAddr:      *coordAddr,
		ListenAddr:     *listen,
		HeartbeatEvery: *hbEvery,
		AbortGrace:     *grace,
		Logf:           logger.Printf,
	})
	if err != nil {
		logger.Printf("exiting: %v", err)
		os.Exit(1)
	}
}
