package main

import (
	"bytes"
	"strings"
	"testing"

	"knightking/internal/lint/driver"
)

// TestRepoComesUpClean is the self-check the acceptance criteria demand:
// kklint over the whole module finds nothing — every wall-clock read in
// the deterministic packages carries a reasoned waiver, no payload
// escapes its Exchange window, counters stay atomic, the hot path does
// not allocate, phase-tagged state moves only inside its phase, every
// goroutine joins, and no error is silently dropped.
func TestRepoComesUpClean(t *testing.T) {
	var out, errw bytes.Buffer
	code := driver.Standalone(analyzers(), []string{"knightking/..."}, driver.Options{}, &out, &errw)
	if code != 0 {
		t.Fatalf("kklint knightking/... exited %d\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

// TestRepoCleanWithTests runs the same self-check over the test variants
// (regular + _test.go files, external test packages), which is what the
// CI -tests step executes.
func TestRepoCleanWithTests(t *testing.T) {
	if testing.Short() {
		t.Skip("test-variant sweep is a second full load of the module")
	}
	var out, errw bytes.Buffer
	opts := driver.Options{Tests: true}
	code := driver.Standalone(analyzers(), []string{"knightking/..."}, opts, &out, &errw)
	if code != 0 {
		t.Fatalf("kklint -tests knightking/... exited %d\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

// TestRepoWaiversRecorded pins that the waivers in the engine are visible
// to the audit listing: every waiver has a reason, the known telemetry
// sites are present, and no stale waiver markers survive.
func TestRepoWaiversRecorded(t *testing.T) {
	var out, errw bytes.Buffer
	opts := driver.Options{Waivers: true}
	code := driver.Standalone(analyzers(), []string{"knightking/..."}, opts, &out, &errw)
	if code != 0 {
		t.Fatalf("kklint -waivers exited %d:\n%s\n%s", code, out.String(), errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 30 {
		t.Fatalf("expected the engine's waivers in the listing, got %d lines:\n%s",
			len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "waived: ") {
			t.Errorf("non-waiver line in clean run: %q", line)
		}
	}
}

// TestVetHandshake pins the -V=full and -flags protocol cmd/go speaks to
// a vettool before trusting it.
func TestVetHandshake(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runMain([]string{"-V=full"}, &out, &errw); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, errw.String())
	}
	line := out.String()
	if !strings.Contains(line, "version devel") || !strings.Contains(line, "buildID=") {
		t.Errorf("-V=full output %q lacks the toolID fields cmd/go parses", line)
	}

	out.Reset()
	if code := runMain([]string{"-flags"}, &out, &errw); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, errw.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-flags printed %q, want []", out.String())
	}
}

// TestEmptyPatternFails pins the exit contract for patterns that match
// nothing: a CI step linting a mistyped path must fail loudly, not pass
// vacuously. Two shapes: a path that does not exist (go list itself
// errors) and a real directory containing no Go packages (go list
// succeeds with zero matches and the driver must refuse).
func TestEmptyPatternFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := runMain([]string{"./does/not/exist/..."}, &out, &errw)
	if code != 2 {
		t.Fatalf("nonexistent pattern exited %d, want 2\nstdout: %s\nstderr: %s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "no such file or directory") &&
		!strings.Contains(errw.String(), "matched no packages") {
		t.Errorf("stderr %q does not explain the empty match", errw.String())
	}

	dir := t.TempDir() // exists, but holds no Go files
	out.Reset()
	errw.Reset()
	code = runMain([]string{dir}, &out, &errw)
	if code != 2 {
		t.Fatalf("zero-match pattern exited %d, want 2\nstdout: %s\nstderr: %s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(errw.String(), "no packages match") &&
		!strings.Contains(errw.String(), "no Go files") &&
		!strings.Contains(errw.String(), "matched no packages") {
		t.Errorf("stderr %q does not explain the empty match", errw.String())
	}
}
