package main

import (
	"bytes"
	"strings"
	"testing"

	"knightking/internal/lint/driver"
)

// TestRepoComesUpClean is the self-check the acceptance criteria demand:
// kklint over the whole module finds nothing — every wall-clock read in
// the deterministic packages carries a reasoned waiver, no payload
// escapes its Exchange window, and counters stay atomic.
func TestRepoComesUpClean(t *testing.T) {
	var out, errw bytes.Buffer
	code := driver.Standalone(analyzers(), []string{"knightking/..."}, false, &out, &errw)
	if code != 0 {
		t.Fatalf("kklint knightking/... exited %d\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

// TestRepoWaiversRecorded pins that the timing waivers in the engine are
// visible to the audit listing: every waiver has a reason, and the known
// telemetry sites are present.
func TestRepoWaiversRecorded(t *testing.T) {
	var out, errw bytes.Buffer
	code := driver.Standalone(analyzers(), []string{"knightking/..."}, true, &out, &errw)
	if code != 0 {
		t.Fatalf("kklint -waivers exited %d: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 30 {
		t.Fatalf("expected the engine's timing waivers in the listing, got %d lines:\n%s",
			len(lines), out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "waived: ") {
			t.Errorf("non-waiver line in clean run: %q", line)
		}
	}
}
