// kklint is the repo's contract checker: a multichecker bundling the
// detrand, payloadown, and atomiccounter analyzers (see internal/lint).
//
// Two ways to run it:
//
//	kklint ./...                         # standalone, from the module root
//	go vet -vettool=$(pwd)/bin/kklint ./...   # as a vet tool (make lint)
//
// Standalone flags:
//
//	-waivers   also print every accepted //kk:nondet-ok waiver
//
// Exit status: 0 clean, 1 findings or errors.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/atomiccounter"
	"knightking/internal/lint/detrand"
	"knightking/internal/lint/driver"
	"knightking/internal/lint/payloadown"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		payloadown.Analyzer,
		atomiccounter.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// The go vet handshake: `kklint -V=full` prints a versioned build ID,
	// `kklint -flags` lists the tool's analyzer flags (none), and a single
	// *.cfg argument means cmd/go is driving one compilation unit.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			code := driver.Unitchecker(analyzers(), args[0], os.Stderr)
			if code == 1 {
				os.Exit(1)
			}
			if code != 0 {
				os.Exit(2)
			}
			return
		}
	}

	fs := flag.NewFlagSet("kklint", flag.ExitOnError)
	waivers := fs.Bool("waivers", false, "print accepted //kk:nondet-ok waivers after the diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kklint [-waivers] [packages]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if code := driver.Standalone(analyzers(), patterns, *waivers, os.Stdout, os.Stderr); code != 0 {
		os.Exit(1)
	}
}

// printVersion emits the line cmd/go's toolID parser expects from a
// vettool: `name version devel ... buildID=<content id>`, where the
// content id fingerprints this binary so vet results are cached per
// build of the checker.
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, id)
}
