// kklint is the repo's contract checker: a multichecker bundling the
// detrand, payloadown, atomiccounter, hotalloc, barrierphase, goroleak,
// and errdrop analyzers (see internal/lint).
//
// Two ways to run it:
//
//	kklint ./...                         # standalone, from the module root
//	go vet -vettool=$(pwd)/bin/kklint ./...   # as a vet tool (make lint)
//
// Standalone flags:
//
//	-waivers   also print every accepted //kk:*-ok waiver, and fail when
//	           a waiver marker no longer suppresses any diagnostic
//	-tests     analyze test variants too (regular + _test.go files and
//	           external test packages), like `go vet` does
//
// Exit status: 0 clean, 1 findings or stale waivers, 2 usage/load errors
// (including package patterns that match nothing).
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"knightking/internal/lint/analysis"
	"knightking/internal/lint/atomiccounter"
	"knightking/internal/lint/barrierphase"
	"knightking/internal/lint/detrand"
	"knightking/internal/lint/driver"
	"knightking/internal/lint/errdrop"
	"knightking/internal/lint/goroleak"
	"knightking/internal/lint/hotalloc"
	"knightking/internal/lint/payloadown"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		payloadown.Analyzer,
		atomiccounter.Analyzer,
		hotalloc.Analyzer,
		barrierphase.Analyzer,
		goroleak.Analyzer,
		errdrop.Analyzer,
	}
}

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

// runMain is main with the process edges injected, so the vet handshake
// and exit-code contract are testable.
func runMain(args []string, stdout, stderr io.Writer) int {
	// The go vet handshake: `kklint -V=full` prints a versioned build ID,
	// `kklint -flags` lists the tool's analyzer flags (none), and a single
	// *.cfg argument means cmd/go is driving one compilation unit.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion(stdout)
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			code := driver.Unitchecker(analyzers(), args[0], stderr)
			if code == 1 {
				return 1
			}
			if code != 0 {
				return 2
			}
			return 0
		}
	}

	fs := flag.NewFlagSet("kklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	waivers := fs.Bool("waivers", false,
		"print accepted //kk:*-ok waivers after the diagnostics and fail on stale waiver markers")
	tests := fs.Bool("tests", false, "analyze test variants (regular + _test.go files) too")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: kklint [-waivers] [-tests] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts := driver.Options{Waivers: *waivers, Tests: *tests}
	return driver.Standalone(analyzers(), patterns, opts, stdout, stderr)
}

// printVersion emits the line cmd/go's toolID parser expects from a
// vettool: `name version devel ... buildID=<content id>`, where the
// content id fingerprints this binary so vet results are cached per
// build of the checker.
func printVersion(out io.Writer) {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Fprintf(out, "%s version devel comments-go-here buildID=%s\n", name, id)
}
