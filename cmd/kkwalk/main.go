// Command kkwalk runs one of the four built-in random walk algorithms on a
// graph file (text or binary edge list) over the simulated cluster, and
// optionally dumps the walk sequences.
//
// Usage:
//
//	kkwalk -graph g.txt -alg deepwalk -length 80
//	kkwalk -graph g.txt -alg ppr -pt 0.0125
//	kkwalk -graph g.bin -binary -alg node2vec -p 2 -q 0.5 -nodes 8 -walkers 100000
//	kkwalk -graph g.txt -alg metapath -schemes "0,1;2,0,1" -length 80
//	kkwalk -graph g.txt -alg node2vec -dump walks.txt
//
// Long jobs can snapshot their state every few supersteps and pick up
// after a crash:
//
//	kkwalk -graph g.txt -alg node2vec -checkpoint-dir ckpt -checkpoint-every 16
//	kkwalk -graph g.txt -alg node2vec -checkpoint-dir ckpt -resume
//
// Telemetry: -admin-addr serves live /metrics, /statusz, /trace, and
// /debug/pprof while the run is in flight; -spans streams per-superstep
// phase traces as JSONL; -trace records a causal trace (superstep/phase
// spans, exchange peer attribution, sampled walker journeys) and writes it
// as Perfetto JSON — open the file at https://ui.perfetto.dev; -json
// replaces the human summary with exactly one machine-parseable report
// line on stdout:
//
//	kkwalk -graph g.txt -alg node2vec -admin-addr localhost:6060 -spans spans.jsonl
//	kkwalk -graph g.txt -alg node2vec -trace trace.json -trace-sample 64
//	kkwalk -graph g.txt -alg node2vec -quiet -json | jq .edges_per_step
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"knightking/internal/alg"
	"knightking/internal/checkpoint"
	"knightking/internal/cluster"
	"knightking/internal/core"
	"knightking/internal/graph"
	"knightking/internal/obs"
	"knightking/internal/obs/tracelog"
	"knightking/internal/sampling"
	"knightking/internal/stats"
	"knightking/internal/transport"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "input graph file (required)")
		binary     = flag.Bool("binary", false, "graph file is in binary CSR format")
		undirected = flag.Bool("undirected", false, "double text edges into both directions")
		algName    = flag.String("alg", "deepwalk", "algorithm: deepwalk|ppr|rwr|metapath|node2vec")
		length     = flag.Int("length", 80, "walk length (deepwalk/rwr/metapath/node2vec)")
		pt         = flag.Float64("pt", 0.0125, "termination probability (ppr)")
		restart    = flag.Float64("restart", 0.15, "restart probability (rwr)")
		p          = flag.Float64("p", 2, "node2vec return parameter")
		q          = flag.Float64("q", 0.5, "node2vec in-out parameter")
		schemesArg = flag.String("schemes", "0", "metapath schemes: comma-separated types, ';'-separated schemes")
		biased     = flag.Bool("biased", false, "weight-biased static component")
		nodes      = flag.Int("nodes", 4, "simulated cluster nodes")
		workers    = flag.Int("workers", 4, "worker goroutines per node")
		stepping   = flag.String("stepping", core.SteppingInterleaved, "stepping strategy: interleaved|scalar (bit-identical output)")
		batch      = flag.Int("batch", 0, "interleaved stepping batch size (0 = default)")
		adapt      = flag.Bool("adapt", false, "enable runtime sampler adaptation (mutually exclusive with checkpointing)")
		adaptEvery = flag.Int("adapt-every", 0, "supersteps between adaptation decision barriers (0 = default)")
		adaptMin   = flag.Uint("adapt-min-steps", 0, "minimum observed steps at a vertex before its sampler may switch (0 = default)")
		walkers    = flag.Int("walkers", 0, "walker count (0 = |V|)")
		seed       = flag.Uint64("seed", 1, "run seed")
		dump       = flag.String("dump", "", "dump walk sequences to this file (- = stdout)")
		visits     = flag.String("visits", "", "dump per-vertex visit counts to this file (- = stdout)")
		rank       = flag.Int("rank", -1, "static multi-process mode: this process's rank (requires -peers; prefer kkcoord/kkrank)")
		peers      = flag.String("peers", "", "static multi-process mode: comma-separated listen addresses of all ranks, in rank order (requires -rank; prefer kkcoord/kkrank)")
		noLight    = flag.Bool("nolight", false, "disable straggler-aware light mode")
		netTimeout = flag.Duration("net-timeout", 0, "fail any exchange barrier not completing within this duration (0 = wait forever); also sets TCP read/write deadlines in multi-process mode")
		ckptDir    = flag.String("checkpoint-dir", "", "snapshot walk state into this directory")
		ckptEvery  = flag.Int("checkpoint-every", 16, "supersteps between checkpoints")
		resume     = flag.Bool("resume", false, "resume from the latest complete checkpoint in -checkpoint-dir")
		adminAddr  = flag.String("admin-addr", "", "serve /metrics, /statusz, /trace, and /debug/pprof on this host:port while running")
		spansPath  = flag.String("spans", "", "stream per-superstep span records to this file as JSONL (- = stderr)")
		tracePath  = flag.String("trace", "", "write the causal trace (Perfetto JSON) to this file (- = stdout)")
		traceEvery = flag.Int64("trace-sample", 0, "trace one in N walker journeys by walker ID (0 = default 64; requires -trace)")
		jsonOut    = flag.Bool("json", false, "print the end-of-run report as exactly one JSON line on stdout")
		quiet      = flag.Bool("quiet", false, "suppress the human-readable summary and progress lines on stderr")
	)
	flag.Parse()
	if *graphPath == "" {
		fatalf("-graph is required")
	}
	if *jsonOut && (*dump == "-" || *visits == "-" || *tracePath == "-") {
		fatalf("-json owns stdout; write -dump/-visits/-trace to a file instead of -")
	}
	if *traceEvery != 0 && *tracePath == "" {
		fatalf("-trace-sample requires -trace")
	}
	if *traceEvery < 0 {
		fatalf("-trace-sample must be non-negative")
	}

	progressf := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	// Telemetry is opt-in: any of the reporting flags builds a registry. The
	// registry implements every engine hook, so wiring it below is the whole
	// integration; runs without these flags pay only nil-observer branches.
	var reg *obs.Registry
	if *adminAddr != "" || *spansPath != "" || *jsonOut || *tracePath != "" {
		reg = obs.NewRegistry(nil)
	}

	// Static multi-process mode needs both halves of the pair: a rank with
	// no peer list (or vice versa) is a misconfigured launch script, so fail
	// before touching the graph. The kkcoord/kkrank control plane supersedes
	// these flags — it hands each worker its rank, peers, and partition, and
	// survives rank failures; static -rank/-peers remains for fixed
	// single-shot deployments.
	if *rank >= 0 && *peers == "" {
		fatalf("-rank requires -peers (or use kkcoord/kkrank, which assigns ranks automatically)")
	}
	if *peers != "" && *rank < 0 {
		fatalf("-peers requires -rank (or use kkcoord/kkrank, which assigns ranks automatically)")
	}
	multiProcess := *peers != ""
	var peerAddrs []string
	if multiProcess {
		peerAddrs = strings.Split(*peers, ",")
		if *rank >= len(peerAddrs) {
			fatalf("-rank %d out of range for %d peers", *rank, len(peerAddrs))
		}
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatalf("open graph: %v", err)
	}
	var g *graph.Graph
	var partStarts []graph.VertexID
	switch {
	case *binary && multiProcess:
		// Memory-scaled deployment: read only the offset array to agree on
		// the partition, then load just this rank's adjacency slice.
		hdr, herr := graph.ReadBinaryDegrees(f)
		if herr != nil {
			fatalf("read degrees: %v", herr)
		}
		degrees := make([]int, hdr.NumVertices)
		for v := range degrees {
			degrees[v] = hdr.Degree(graph.VertexID(v))
		}
		part := cluster.Partition1DFromDegrees(degrees, len(peerAddrs), 1)
		partStarts = part.Starts()
		lo, hi := part.Range(*rank)
		g, err = graph.ReadBinarySlice(f, lo, hi)
		if err == nil {
			progressf("rank %d loaded vertex slice [%d,%d): %d local edges\n",
				*rank, lo, hi, g.NumEdges())
		}
	case *binary:
		g, err = graph.ReadBinary(f)
	default:
		g, err = graph.ReadEdgeList(f, *undirected, 0)
	}
	f.Close()
	if err != nil {
		fatalf("load graph: %v", err)
	}

	var program *core.Algorithm
	switch *algName {
	case "deepwalk":
		program = alg.DeepWalk(*length, *biased)
	case "ppr":
		program = alg.PPR(*pt, *biased, 0)
	case "rwr":
		program = alg.RWR(*restart, *biased, *length)
	case "metapath":
		program = alg.MetaPath(parseSchemes(*schemesArg), *length, *biased)
	case "node2vec":
		program = alg.Node2Vec(alg.Node2VecParams{
			P: *p, Q: *q, Length: *length, Biased: *biased,
			LowerBound: true, FoldOutlier: true,
		})
	default:
		fatalf("unknown -alg %q", *algName)
	}

	lt := 0 // default threshold
	if *noLight {
		lt = -1
	}
	cfg := core.Config{
		Graph:           g,
		Algorithm:       program,
		NumNodes:        *nodes,
		Workers:         *workers,
		NumWalkers:      *walkers,
		Seed:            *seed,
		RecordPaths:     *dump != "",
		CountVisits:     *visits != "",
		LightThreshold:  lt,
		PartitionStarts: partStarts,
		NetTimeout:      *netTimeout,
		Stepping:        *stepping,
		BatchSize:       *batch,
	}
	if *adapt {
		if *ckptDir != "" {
			fatalf("-adapt is mutually exclusive with -checkpoint-dir (snapshots do not capture sampler mode state)")
		}
		cfg.Adapt = &core.AdaptConfig{
			Every:  *adaptEvery,
			Policy: sampling.AdaptivePolicy{MinSteps: uint32(*adaptMin)},
		}
	} else if *adaptEvery != 0 || *adaptMin != 0 {
		fatalf("-adapt-every/-adapt-min-steps require -adapt")
	}

	ranks := *nodes
	if multiProcess {
		ranks = len(peerAddrs)
	}
	if reg != nil {
		cfg.Counters = reg.Counters()
		cfg.Observer = reg
		reg.SetRunInfo(program.Name, g.NumVertices(), g.NumEdges(), ranks)
	}

	// The trace collector rides the registry for span/exchange events (the
	// registry forwards) and hooks the engine directly for walker journeys.
	var tc *tracelog.Collector
	if *tracePath != "" {
		tc = tracelog.New(tracelog.Options{
			SampleEvery: *traceEvery,
			Ranks:       ranks,
			Job:         program.Name,
		})
		reg.SetTrace(tc)
		cfg.Trace = tc
	}

	var spansFlush func()
	if *spansPath != "" {
		out := os.Stderr
		if *spansPath != "-" {
			sf, serr := os.Create(*spansPath)
			if serr != nil {
				fatalf("create spans: %v", serr)
			}
			out = sf
		}
		w := bufio.NewWriter(out)
		reg.SetSpanWriter(w)
		spansFlush = func() {
			if err := w.Flush(); err != nil {
				fatalf("write spans: %v", err)
			}
			if out != os.Stderr {
				if err := out.Close(); err != nil {
					fatalf("close spans: %v", err)
				}
			}
		}
	}

	if *adminAddr != "" {
		srv, aerr := obs.NewServer(*adminAddr, reg)
		if aerr != nil {
			fatalf("%v", aerr)
		}
		// Graceful close: an in-flight scrape or trace export racing process
		// exit completes instead of seeing a reset connection.
		defer srv.Shutdown(0)
		progressf("admin server on http://%s (/metrics /statusz /trace /debug/pprof)\n", srv.Addr())
	}

	if *resume && *ckptDir == "" {
		fatalf("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		effWalkers := *walkers
		if effWalkers <= 0 {
			effWalkers = g.NumVertices()
		}
		meta := checkpoint.Meta{
			Seed:        *seed,
			NumWalkers:  uint64(effWalkers),
			NumVertices: uint64(g.NumVertices()),
			Algorithm:   program.Name,
		}
		store, serr := checkpoint.NewStore(*ckptDir, *ckptEvery, meta)
		if serr != nil {
			fatalf("%v", serr)
		}
		if reg != nil {
			store.Observe = reg.ObserveCheckpointSegment
		}
		cfg.Checkpoint = store
		if *resume {
			cp, lerr := checkpoint.Load(*ckptDir)
			if lerr != nil {
				fatalf("%v", lerr)
			}
			if verr := cp.Validate(meta); verr != nil {
				fatalf("%v", verr)
			}
			cfg.Restore = cp.RestoreState()
			progressf("resuming from the superstep-%d checkpoint\n", cp.Iteration)
		}
	}

	// Cooperative shutdown: the first SIGINT/SIGTERM closes the engine's
	// cancel channel, so every rank (local or remote) leaves at the same
	// superstep barrier and committed checkpoints stay valid resume points.
	// A second signal force-exits for runs that are past reasoning with.
	cancelCh := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		progressf("kkwalk: received %v; cancelling at the next superstep barrier\n", sig)
		close(cancelCh)
		sig = <-sigCh
		fmt.Fprintf(os.Stderr, "kkwalk: received second %v; exiting immediately\n", sig)
		os.Exit(1)
	}()
	cfg.Cancel = cancelCh

	var res *core.Result
	if multiProcess {
		// Real multi-process deployment: every rank runs this binary with
		// the same flags plus its own -rank; results here cover only this
		// rank's share (walkers that terminated locally).
		ep, derr := transport.DialTCPGroupOpts(*rank, peerAddrs, transport.TCPOptions{
			ReadTimeout:  *netTimeout,
			WriteTimeout: *netTimeout,
		})
		if derr != nil {
			fatalf("join cluster: %v", derr)
		}
		defer ep.Close()
		progressf("rank %d of %d joined cluster\n", *rank, len(peerAddrs))
		res, err = core.RunNode(cfg, ep)
	} else {
		res, err = core.Run(cfg)
	}
	if err != nil {
		if errors.Is(err, core.ErrCancelled) {
			fatalf("interrupted: %v (no results written; resume with -checkpoint-dir/-resume if checkpointing was on)", err)
		}
		fatalf("run: %v", err)
	}
	if spansFlush != nil {
		spansFlush()
	}
	if tc != nil {
		out := os.Stdout
		if *tracePath != "-" {
			tf, terr := os.Create(*tracePath)
			if terr != nil {
				fatalf("create trace: %v", terr)
			}
			out = tf
		}
		w := bufio.NewWriter(out)
		if terr := tc.WritePerfetto(w); terr != nil {
			fatalf("write trace: %v", terr)
		}
		if terr := w.Flush(); terr != nil {
			fatalf("write trace: %v", terr)
		}
		if out != os.Stdout {
			if terr := out.Close(); terr != nil {
				fatalf("close trace: %v", terr)
			}
		}
		progressf("trace written to %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}

	// res.Counters is the post-join snapshot Run/RunNode took after every
	// worker goroutine finished, so every cross-field ratio in the report is
	// exact (the Counters doc's consistency contract; mid-run snapshots from
	// the admin server are only per-field consistent).
	effWalkers := *walkers
	if effWalkers <= 0 {
		effWalkers = g.NumVertices()
	}
	rep := stats.NewReport(res.Counters, stats.RunInfo{
		Algorithm:   program.Name,
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		Ranks:       ranks,
		Walkers:     int64(effWalkers),
		Supersteps:  res.Iterations,
		LightSupers: res.LightIterations,
		Duration:    res.Duration,
		Setup:       res.SetupDuration,
	})
	if reg != nil {
		reg.FillReport(&rep)
	}
	if !*quiet {
		if err := rep.WriteHuman(os.Stderr); err != nil {
			fatalf("write report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "walk length: mean %.1f, max %d\n",
			res.Lengths.Mean(), res.Lengths.Max())
	}
	if *jsonOut {
		line, jerr := rep.JSONLine()
		if jerr != nil {
			fatalf("encode report: %v", jerr)
		}
		fmt.Println(line)
	}

	if *visits != "" {
		out := os.Stdout
		if *visits != "-" {
			vf, err := os.Create(*visits)
			if err != nil {
				fatalf("create visits: %v", err)
			}
			defer func() {
				if err := vf.Close(); err != nil {
					fatalf("close visits: %v", err)
				}
			}()
			out = vf
		}
		w := bufio.NewWriter(out)
		for v, n := range res.Visits {
			fmt.Fprintf(w, "%d %d\n", v, n)
		}
		if err := w.Flush(); err != nil {
			fatalf("write visits: %v", err)
		}
	}

	if *dump != "" {
		out := os.Stdout
		if *dump != "-" {
			df, err := os.Create(*dump)
			if err != nil {
				fatalf("create dump: %v", err)
			}
			defer func() {
				if err := df.Close(); err != nil {
					fatalf("close dump: %v", err)
				}
			}()
			out = df
		}
		w := bufio.NewWriter(out)
		for _, path := range res.Paths {
			if path == nil {
				continue // walker terminated on another rank
			}
			for i, v := range path {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprint(w, v)
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			fatalf("write dump: %v", err)
		}
	}
}

// parseSchemes parses "0,1;2,0,1" into [][]int32{{0,1},{2,0,1}}.
func parseSchemes(s string) [][]int32 {
	var schemes [][]int32
	for _, part := range strings.Split(s, ";") {
		var scheme []int32
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseInt(tok, 10, 32)
			if err != nil {
				fatalf("bad scheme element %q: %v", tok, err)
			}
			scheme = append(scheme, int32(v))
		}
		if len(scheme) > 0 {
			schemes = append(schemes, scheme)
		}
	}
	if len(schemes) == 0 {
		fatalf("no schemes parsed from %q", s)
	}
	return schemes
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "kkwalk: "+format+"\n", args...)
	os.Exit(1)
}
