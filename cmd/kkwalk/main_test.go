package main

import "testing"

func TestParseSchemes(t *testing.T) {
	got := parseSchemes("0,1;2,0,1")
	if len(got) != 2 {
		t.Fatalf("%d schemes", len(got))
	}
	if len(got[0]) != 2 || got[0][0] != 0 || got[0][1] != 1 {
		t.Fatalf("scheme 0 = %v", got[0])
	}
	if len(got[1]) != 3 || got[1][0] != 2 {
		t.Fatalf("scheme 1 = %v", got[1])
	}
}

func TestParseSchemesWhitespaceAndEmpties(t *testing.T) {
	got := parseSchemes(" 3 , 4 ;;5,")
	if len(got) != 2 {
		t.Fatalf("%d schemes: %v", len(got), got)
	}
	if got[0][0] != 3 || got[0][1] != 4 || got[1][0] != 5 {
		t.Fatalf("schemes = %v", got)
	}
}

func TestParseSchemesSingle(t *testing.T) {
	got := parseSchemes("7")
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != 7 {
		t.Fatalf("schemes = %v", got)
	}
}
