// Meta-path walks on a heterogeneous bibliographic network — the paper's
// §2.2 example: probing citation relationships with a typed walk scheme.
//
// The graph has author and paper vertices and three (symmetric) edge
// types:
//
//	type 0: author—paper   ("writes" / "written by")
//	type 1: paper—paper    ("cites" / "cited by")
//
// The meta-path scheme {0, 1, 0} makes each walker alternate
// author → paper → (cited) paper → its author → ..., generating long
// citation chains between authors, exactly the pattern the paper
// describes ("isAuthor → citedBy → authoredBy⁻¹").
package main

import (
	"fmt"
	"log"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/graph"
	"knightking/internal/rng"
)

const (
	numAuthors      = 400
	numPapers       = 1200
	papersPerAuthor = 4
	citationsPer    = 6
	typeWrites      = 0
	typeCites       = 1
)

// buildBibliography assembles the heterogeneous network: vertex IDs
// [0, numAuthors) are authors, the rest are papers.
func buildBibliography(seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(numAuthors + numPapers).SetUndirected(true).SetDedup(true)
	paperID := func(i int) graph.VertexID { return graph.VertexID(numAuthors + i) }
	// Authorship: every paper gets 1-3 authors; every author writes some.
	for pi := 0; pi < numPapers; pi++ {
		nAuth := 1 + r.Intn(3)
		for a := 0; a < nAuth; a++ {
			b.AddTypedEdge(graph.VertexID(r.Intn(numAuthors)), paperID(pi), 1, typeWrites)
		}
	}
	for ai := 0; ai < numAuthors; ai++ {
		for k := 0; k < papersPerAuthor; k++ {
			b.AddTypedEdge(graph.VertexID(ai), paperID(r.Intn(numPapers)), 1, typeWrites)
		}
	}
	// Citations among papers.
	for pi := 0; pi < numPapers; pi++ {
		for c := 0; c < citationsPer; c++ {
			target := r.Intn(numPapers)
			if target == pi {
				continue
			}
			b.AddTypedEdge(paperID(pi), paperID(target), 1, typeCites)
		}
	}
	return b.Build()
}

func main() {
	g := buildBibliography(2024)
	fmt.Printf("bibliographic network: %d authors, %d papers, %d typed edges\n\n",
		numAuthors, numPapers, g.NumEdges())

	// Walkers start at authors and follow writes → cites → writes ...
	scheme := [][]int32{{typeWrites, typeCites, typeWrites}}
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   alg.MetaPath(scheme, 9, false), // 3 scheme cycles
		NumNodes:    2,
		NumWalkers:  numAuthors,
		StartVertex: func(id int64) graph.VertexID { return graph.VertexID(id % numAuthors) },
		Seed:        5,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d meta-path walkers, %d steps total, %.3f edges examined per step\n\n",
		res.Counters.Terminations, res.Counters.Steps, res.Counters.EdgesPerStep())

	printed := 0
	for id := 0; id < len(res.Paths) && printed < 4; id++ {
		p := res.Paths[id]
		if len(p) < 7 {
			continue // dead-ended early
		}
		fmt.Printf("citation chain from author %d:\n  ", p[0])
		for i, v := range p {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(label(v))
		}
		fmt.Println()
		printed++
	}
	fmt.Println("\neach hop follows the scheme writes/cites/writes — a typed walk no static sampler can precompute")
}

func label(v graph.VertexID) string {
	if int(v) < numAuthors {
		return fmt.Sprintf("author%d", v)
	}
	return fmt.Sprintf("paper%d", int(v)-numAuthors)
}
