// TCP cluster: the same engine, over a real wire.
//
// Every other example uses the in-process transport; this one brings up a
// 3-rank TCP mesh on loopback and runs second-order node2vec across it —
// walker migrations, state queries, and responses all travel through
// length-prefixed TCP frames. The walks produced are byte-identical to an
// in-process run with the same seed, which the example verifies.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/transport"
)

const ranks = 3

func main() {
	g := gen.TruncatedPowerLaw(3000, 4, 500, 2.0, 31)
	program := func() *core.Algorithm {
		return alg.Node2Vec(alg.Node2VecParams{
			P: 2, Q: 0.5, Length: 30, LowerBound: true, FoldOutlier: true,
		})
	}

	// Reference run over the in-process transport.
	ref, err := core.Run(core.Config{
		Graph: g, Algorithm: program(), NumNodes: ranks, Seed: 8, RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reserve three loopback ports, then bring up the full TCP mesh.
	addrs := make([]string, ranks)
	listeners := make([]net.Listener, ranks)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	fmt.Printf("cluster addresses: %v\n", addrs)

	eps := make([]transport.Endpoint, ranks)
	var wg sync.WaitGroup
	for i := 0; i < ranks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := transport.DialTCPGroup(i, addrs)
			if err != nil {
				log.Fatalf("rank %d: %v", i, err)
			}
			eps[i] = ep
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	res, err := core.Run(core.Config{
		Graph: g, Algorithm: program(), Endpoints: eps, Seed: 8, RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TCP run: %d walkers, %d steps, %d supersteps in %v\n",
		res.Counters.Terminations, res.Counters.Steps, res.Iterations,
		res.Duration.Round(1e6))
	fmt.Printf("wire traffic: %d messages, %.1f MB payload\n",
		res.Counters.Messages, float64(res.Counters.BytesSent)/1e6)

	for id := range ref.Paths {
		if fmt.Sprint(ref.Paths[id]) != fmt.Sprint(res.Paths[id]) {
			log.Fatalf("walker %d diverged between transports!", id)
		}
	}
	fmt.Println("verified: all walks byte-identical to the in-process run — the engine is transport-agnostic")
}
