// Quickstart: generate a small graph, run DeepWalk on the engine, and
// print a few of the resulting walk sequences — the smallest end-to-end
// use of the library.
package main

import (
	"fmt"
	"log"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
)

func main() {
	// A 1000-vertex social-network-shaped graph (heavy-tailed degrees).
	g := gen.TruncatedPowerLaw(1000, 3, 200, 2.1, 42)
	st := g.Stats()
	fmt.Printf("graph: |V|=%d |E|=%d, degree mean %.1f / max %d\n",
		g.NumVertices(), g.NumEdges(), st.Mean, st.Max)

	// DeepWalk: one unbiased 20-step walker per vertex, run on a simulated
	// 4-node cluster.
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   alg.DeepWalk(20, false),
		NumNodes:    4,
		Seed:        1,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("walked %d walkers × %d steps in %v (%d supersteps)\n",
		res.Counters.Terminations, 20, res.Duration.Round(1e6), res.Iterations)
	fmt.Println("first three walk sequences:")
	for id := 0; id < 3; id++ {
		fmt.Printf("  walker %d: %v\n", id, res.Paths[id])
	}
}
