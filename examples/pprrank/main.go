// Personalized PageRank by random walk: the paper's PPR use case.
//
// Many short walks start from one source user of a social graph; the
// stationary visit frequencies approximate the source's personalized
// PageRank vector, which we use to produce "people you may know"
// recommendations — highly ranked vertices that are not yet direct
// neighbors.
package main

import (
	"fmt"
	"log"
	"sort"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func main() {
	g := gen.TruncatedPowerLaw(5000, 4, 400, 2.0, 11)
	const source graph.VertexID = 123
	fmt.Printf("social graph: |V|=%d |E|=%d; personalizing for user %d (degree %d)\n\n",
		g.NumVertices(), g.NumEdges(), source, g.Degree(source))

	// 20k walkers from the source with termination probability 1/80 —
	// the paper's PPR setup, all starting at one personalization vertex.
	res, err := core.Run(core.Config{
		Graph:       g,
		Algorithm:   alg.PPR(1.0/80, false, 0),
		NumWalkers:  20000,
		NumNodes:    4,
		StartVertex: func(int64) graph.VertexID { return source },
		Seed:        3,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d walks (mean length %.1f, max %d) in %v\n\n",
		res.Counters.Terminations, res.Lengths.Mean(), res.Lengths.Max(),
		res.Duration.Round(1e6))

	// Visit frequencies approximate the PPR vector.
	visits := make(map[graph.VertexID]int)
	for _, p := range res.Paths {
		for _, v := range p[1:] {
			visits[v]++
		}
	}

	neighbors := make(map[graph.VertexID]bool)
	for _, nb := range g.Neighbors(source) {
		neighbors[nb] = true
	}

	type ranked struct {
		v graph.VertexID
		n int
	}
	var all []ranked
	for v, n := range visits {
		if v == source || neighbors[v] {
			continue // already connected
		}
		all = append(all, ranked{v, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].v < all[j].v
	})

	fmt.Println("top-10 recommendations (non-neighbors by PPR score):")
	for i := 0; i < 10 && i < len(all); i++ {
		fmt.Printf("  %2d. user %-6d score %.5f\n",
			i+1, all[i].v, float64(all[i].n)/float64(res.Counters.Steps))
	}
}
