// End-to-end node2vec: walks → SkipGram → embeddings → nearest neighbors.
//
// This is the complete pipeline the paper's introduction motivates (and
// whose walk stage dominates runtime — 98.8% in the Spark implementation
// the paper cites). We build a planted-community graph, generate
// second-order node2vec walks with the engine, train SGNS embeddings on
// the corpus, and verify that nearest neighbors in embedding space
// recover the planted communities.
package main

import (
	"fmt"
	"log"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/embed"
	"knightking/internal/gen"
	"knightking/internal/graph"
	"knightking/internal/rng"
	"knightking/internal/trace"
)

const (
	communities = 8
	perComm     = 50
	inDegree    = 8 // intra-community edges per vertex
	outDegree   = 1 // inter-community edges per vertex
)

func main() {
	g := gen.PlantedPartition(communities, perComm, inDegree, outDegree, 17)
	fmt.Printf("planted-community graph: %d communities × %d vertices, |E|=%d\n",
		communities, perComm, g.NumEdges())

	// Stage 1: node2vec walks (local-biased: q > 1 keeps walks inside
	// communities).
	res, err := core.Run(core.Config{
		Graph: g,
		Algorithm: alg.Node2Vec(alg.Node2VecParams{
			P: 4, Q: 2, Length: 40, LowerBound: true, FoldOutlier: true,
		}),
		NumWalkers:  g.NumVertices() * 6,
		NumNodes:    4,
		Seed:        23,
		RecordPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	corpus := trace.New(res.Paths)
	fmt.Printf("stage 1 (walks): %d sequences, %d tokens, %.3f edges/step, %v\n",
		corpus.Len(), corpus.Tokens(), res.Counters.EdgesPerStep(),
		res.Duration.Round(1e6))

	// Stage 2: SkipGram with negative sampling.
	model, err := embed.Train(corpus, embed.Config{
		Dim: 48, Window: 5, Negatives: 5, Epochs: 3, Seed: 29,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2 (SGNS): %d × %d-dim embeddings trained\n",
		model.NumVertices(), model.Dim())

	// Stage 3: evaluate — nearest neighbors should share the community.
	const probes = 40
	hits, total := 0, 0
	r := rng.New(31)
	for i := 0; i < probes; i++ {
		v := graph.VertexID(r.Intn(g.NumVertices()))
		for _, nb := range model.MostSimilar(v, 5) {
			total++
			if int(nb.Vertex)/perComm == int(v)/perComm {
				hits++
			}
		}
	}
	fmt.Printf("stage 3 (eval): %.1f%% of top-5 embedding neighbors share the planted community (random would be %.1f%%)\n",
		100*float64(hits)/float64(total), 100.0/communities)

	v := graph.VertexID(0)
	fmt.Printf("\nexample: nearest neighbors of vertex %d (community 0):\n", v)
	for _, nb := range model.MostSimilar(v, 5) {
		fmt.Printf("  vertex %-4d community %d  similarity %.3f\n",
			nb.Vertex, int(nb.Vertex)/perComm, nb.Similarity)
	}
}
