// node2vec feature-learning walks: the motivating workload of the paper.
//
// This example generates an R-MAT social network, runs second-order
// node2vec walks under two hyper-parameter settings — a "local" (BFS-like,
// high p, high q) and an "exploring" (DFS-like) configuration — and shows
// how the walk statistics respond, along with the engine's sampling cost
// (edges/step), which stays under one edge examined per move either way.
// The dumped sequences are exactly what a SkipGram embedding stage would
// consume.
package main

import (
	"fmt"
	"log"

	"knightking/internal/alg"
	"knightking/internal/core"
	"knightking/internal/gen"
	"knightking/internal/graph"
)

func main() {
	g := gen.RMAT(13, 8, 0.57, 0.19, 0.19, 7) // 8192 vertices, social-shaped
	st := g.Stats()
	fmt.Printf("social graph: |V|=%d |E|=%d, degree mean %.1f, max %d (hubs!)\n\n",
		g.NumVertices(), g.NumEdges(), st.Mean, st.Max)

	for _, setting := range []struct {
		name string
		p, q float64
	}{
		{"local view (p=4, q=2, BFS-like)", 4, 2},
		{"exploration (p=0.25, q=0.25, DFS-like)", 0.25, 0.25},
	} {
		res, err := core.Run(core.Config{
			Graph: g,
			Algorithm: alg.Node2Vec(alg.Node2VecParams{
				P: setting.p, Q: setting.q, Length: 40,
				LowerBound: true, FoldOutlier: true,
			}),
			NumNodes:    4,
			NumWalkers:  2000,
			Seed:        99,
			RecordPaths: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		unique, spread := walkDiversity(res.Paths)
		fmt.Printf("%s\n", setting.name)
		fmt.Printf("  %d walks of length 40 in %v\n", len(res.Paths), res.Duration.Round(1e6))
		fmt.Printf("  sampling cost: %.3f edges/step, %.2f trials/step\n",
			res.Counters.EdgesPerStep(), res.Counters.TrialsPerStep())
		fmt.Printf("  walk diversity: %.1f unique vertices per 40-step walk, avg hop distance %.2f\n\n",
			unique, spread)
	}
	fmt.Println("feed the dumped sequences to any SkipGram trainer to obtain embeddings")
}

// walkDiversity reports the mean number of distinct vertices per walk and
// a cheap spread proxy (mean |v_i - v_{i-1}| over R-MAT's locality-encoded
// IDs).
func walkDiversity(paths [][]graph.VertexID) (uniquePerWalk, spread float64) {
	var uniqueSum, spreadSum, hops float64
	for _, p := range paths {
		seen := make(map[graph.VertexID]bool, len(p))
		for i, v := range p {
			seen[v] = true
			if i > 0 {
				d := int64(v) - int64(p[i-1])
				if d < 0 {
					d = -d
				}
				spreadSum += float64(d)
				hops++
			}
		}
		uniqueSum += float64(len(seen))
	}
	return uniqueSum / float64(len(paths)), spreadSum / hops
}
